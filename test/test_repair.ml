(* Tests of the repair extension (the paper's future-work item (ii)):
   a crashed server is restored with no volatile state, rebuilds its
   coded element from its peers, and rejoins without ever compromising
   atomicity or the storage bound. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity
module Tag = Protocol.Tag

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check_history d ~initial_value =
  History.all_complete (Soda.Deployment.history d)
  && Atomicity.check_tagged ~initial_value
       (History.records (Soda.Deployment.history d))
     = Ok ()

let was_repaired d ~coordinate =
  List.exists
    (function
      | Probe.Repaired { server; _ } -> server = coordinate
      | _ -> false)
    (Probe.events (Soda.Deployment.probe d))

let repair_tests =
  [ Alcotest.test_case
      "repaired server catches up and carries the system through f more \
       crashes"
      `Quick (fun () ->
        let params = Params.make ~n:5 ~f:1 () in
        let initial_value = Bytes.make 200 '0' in
        let engine = Engine.create ~seed:3 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:1
            ~num_readers:1 ()
        in
        (* server 0 crashes; two writes land while it is down *)
        Soda.Deployment.crash_server d ~coordinate:0 ~at:5.0;
        let v2 = Bytes.make 200 'B' in
        Soda.Deployment.write d ~writer:0 ~at:10.0 (Bytes.make 200 'A');
        Soda.Deployment.write d ~writer:0 ~at:50.0 v2;
        (* it comes back and repairs *)
        ignore (Soda.Deployment.repair_server d ~coordinate:0 ~at:100.0);
        (* then a DIFFERENT server dies: the repaired one is now load-
           bearing — with k = 4, reads need its element *)
        Soda.Deployment.crash_server d ~coordinate:3 ~at:200.0;
        let result = ref None in
        Soda.Deployment.read d ~reader:0 ~at:250.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        Alcotest.(check bool) "was repaired" true (was_repaired d ~coordinate:0);
        (match !result with
        | Some v ->
          Alcotest.(check bool) "read returned the latest value" true
            (Bytes.equal v v2)
        | None -> Alcotest.fail "read did not complete");
        Alcotest.(check bool) "repaired server holds the latest tag" true
          (Tag.equal
             (Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:0))
             (Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:1)));
        Alcotest.(check bool) "history atomic" true
          (check_history d ~initial_value));
    Alcotest.test_case "repair with no writes restores the initial state"
      `Quick (fun () ->
        let params = Params.make ~n:5 ~f:2 () in
        let initial_value = Bytes.of_string "pristine initial state" in
        let engine = Engine.create ~seed:5 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:1
            ~num_readers:1 ()
        in
        Soda.Deployment.crash_server d ~coordinate:2 ~at:1.0;
        ignore (Soda.Deployment.repair_server d ~coordinate:2 ~at:20.0);
        let result = ref None in
        Soda.Deployment.read d ~reader:0 ~at:100.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        Alcotest.(check bool) "repaired" true (was_repaired d ~coordinate:2);
        (match !result with
        | Some v ->
          Alcotest.(check bool) "initial value" true
            (Bytes.equal v initial_value)
        | None -> Alcotest.fail "read did not complete"));
    Alcotest.test_case "repairing server abstains from quorums until done"
      `Quick (fun () ->
        let params = Params.make ~n:5 ~f:1 () in
        let engine = Engine.create ~seed:9 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 64 '0') ~num_writers:1 ~num_readers:1
            ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 64 'A');
        Soda.Deployment.crash_server d ~coordinate:0 ~at:20.0;
        ignore (Soda.Deployment.repair_server d ~coordinate:0 ~at:30.0);
        Engine.run engine;
        (* after quiescence the repair is over and the server serves
           queries again: a subsequent read must get n replies *)
        Alcotest.(check bool) "no longer repairing" false
          (Soda.Server.repairing (Soda.Deployment.server d ~coordinate:0));
        let result = ref None in
        Soda.Deployment.read d ~reader:0 ~at:(Engine.now engine +. 10.0)
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        Alcotest.(check bool) "read fine" true (result := !result; !result <> None));
    Alcotest.test_case "repair cost is about one value unit" `Quick (fun () ->
        let params = Params.make ~n:8 ~f:2 () in
        let value_len = 1024 in
        let engine = Engine.create ~seed:11 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make value_len '0') ~num_writers:1
            ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make value_len 'A');
        Soda.Deployment.crash_server d ~coordinate:5 ~at:20.0;
        let op = Soda.Deployment.repair_server d ~coordinate:5 ~at:50.0 in
        Engine.run engine;
        let cost = Cost.comm_of_op (Soda.Deployment.cost d) ~op in
        (* n-1 peers each send one coded element of size ~1/k: cost is
           (n-1)/k = 7/6 ~ 1.17 value units *)
        Alcotest.(check bool)
          (Printf.sprintf "cost %.2f within [0.9, 1.5]" cost)
          true
          (cost >= 0.9 && cost <= 1.5));
    Alcotest.test_case "storage stays at n/(n-f) through crash and repair"
      `Quick (fun () ->
        let params = Params.make ~n:6 ~f:2 () in
        let value_len = 600 in
        let engine = Engine.create ~seed:13 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make value_len '0') ~num_writers:1
            ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make value_len 'A');
        Soda.Deployment.crash_server d ~coordinate:1 ~at:20.0;
        ignore (Soda.Deployment.repair_server d ~coordinate:1 ~at:50.0);
        Soda.Deployment.write d ~writer:0 ~at:100.0 (Bytes.make value_len 'B');
        Engine.run engine;
        let frag =
          Erasure.Splitter.fragment_size ~k:(Params.k_soda params) ~value_len
        in
        let expected = float_of_int (6 * frag) /. float_of_int value_len in
        Alcotest.(check (float 1e-9)) "storage"
          expected
          (Cost.max_total_storage (Soda.Deployment.cost d)));
    qtest ~count:40 "randomized crash/repair cycles preserve atomicity"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        int_range 0 6 >>= fun victim ->
        float_range 10.0 150.0 >>= fun crash_t ->
        float_range 30.0 200.0 >|= fun gap -> (seed, victim, crash_t, gap))
      (fun (seed, victim, crash_t, gap) ->
        let params = Params.make ~n:7 ~f:2 () in
        let initial_value =
          Harness.Workload.value ~len:128 ~seed ~index:999
        in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.3 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:2
            ~num_readers:2 ()
        in
        Soda.Deployment.crash_server d ~coordinate:victim ~at:crash_t;
        ignore
          (Soda.Deployment.repair_server d ~coordinate:victim
             ~at:(crash_t +. gap));
        for i = 0 to 3 do
          let t = float_of_int i *. 120.0 in
          Soda.Deployment.write d ~writer:(i mod 2) ~at:t
            (Harness.Workload.value ~len:128 ~seed ~index:i);
          Soda.Deployment.read d ~reader:(i mod 2) ~at:(t +. 60.0) ()
        done;
        Engine.run engine;
        check_history d ~initial_value && was_repaired d ~coordinate:victim);
    qtest ~count:30 "repair concurrent with writes still converges"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:7 ~f:2 () in
        let initial_value = Harness.Workload.value ~len:128 ~seed ~index:999 in
        let engine =
          Engine.create ~seed ~delay:(Delay.exponential ~mean:1.0 ~cap:8.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:3
            ~num_readers:1 ()
        in
        Soda.Deployment.crash_server d ~coordinate:2 ~at:5.0;
        (* repair kicks off exactly while three writers are dispersing *)
        ignore (Soda.Deployment.repair_server d ~coordinate:2 ~at:31.0);
        for w = 0 to 2 do
          Soda.Deployment.write d ~writer:w
            ~at:(30.0 +. float_of_int w)
            (Harness.Workload.value ~len:128 ~seed ~index:w)
        done;
        Soda.Deployment.read d ~reader:0 ~at:200.0 ();
        Engine.run engine;
        check_history d ~initial_value
        && was_repaired d ~coordinate:2
        && (* the repaired server converged to the same tag as everyone *)
        Tag.equal
          (Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:2))
          (Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:0)));
    Alcotest.test_case "SODAerr repair decodes through corrupt disks" `Quick
      (fun () ->
        let params = Params.make ~n:10 ~f:1 ~e:2 () in
        let initial_value = Bytes.make 300 '0' in
        let engine = Engine.create ~seed:17 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value
            ~error_prone:[ 3; 6 ] ~num_writers:1 ~num_readers:1 ()
        in
        let v = Bytes.make 300 'A' in
        Soda.Deployment.write d ~writer:0 ~at:0.0 v;
        Soda.Deployment.crash_server d ~coordinate:0 ~at:20.0;
        ignore (Soda.Deployment.repair_server d ~coordinate:0 ~at:50.0);
        let result = ref None in
        Soda.Deployment.read d ~reader:0 ~at:200.0
          ~on_done:(fun value -> result := Some value)
          ();
        Engine.run engine;
        Alcotest.(check bool) "repaired" true (was_repaired d ~coordinate:0);
        (match !result with
        | Some value ->
          Alcotest.(check bool) "read correct despite corrupt repair input"
            true (Bytes.equal value v)
        | None -> Alcotest.fail "read did not complete"))
  ]

let () = Alcotest.run "repair" [ ("repair", repair_tests) ]

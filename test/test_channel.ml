(* The reliable-channel substrate: exactly-once delivery over lossy
   links, and the backoff state machine itself.

   The headline properties drive a real engine with
   [~transport:(`Reliable _)]: for any loss schedule with drop
   probability p < 1 and any finite partition window, every logical
   send is handed to the destination handler exactly once within a
   finite number of retransmissions — the channel axiom SODA's proofs
   assume, rebuilt on top of an adversarial network. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Channel = Simnet.Channel

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A generous retry budget: at p = 0.6 a data+ack round trip succeeds
   with probability 0.16, so 200 retries push the per-message failure
   probability below 1e-9 — any abandon is a real bug, not bad luck. *)
let patient = { Channel.default with max_retries = 200 }

type msg = Ping of int

(* [procs] processes; message [i] goes from process [i mod procs] to a
   pseudo-random destination. Returns the per-id delivery counts and
   the engine for counter assertions. *)
let run_lossy ~seed ~loss ~procs ~messages ?(duplication = 0.0)
    ?partition_window () =
  let engine =
    Engine.create ~seed ~duplication ~transport:(`Reliable patient)
      ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
  in
  if loss > 0.0 then Engine.set_loss engine loss;
  let pids =
    Array.init procs (fun i -> Engine.reserve engine ~name:(string_of_int i))
  in
  let delivered = Hashtbl.create 64 in
  Array.iter
    (fun pid ->
      Engine.set_handler engine pid (fun _ctx ~src:_ (Ping id) ->
          Hashtbl.replace delivered id
            (1 + Option.value ~default:0 (Hashtbl.find_opt delivered id))))
    pids;
  (match partition_window with
  | None -> ()
  | Some (from_, until_) ->
    (* cut every link into process 0 — the classic single-victim
       partition; everything must still arrive after the heal *)
    let links =
      List.concat_map
        (fun src -> if src = 0 then [] else [ (src, 0); (0, src) ])
        (List.init procs Fun.id)
    in
    Engine.partition_at engine ~links ~at:from_;
    Engine.heal_at engine ~links ~at:until_);
  for id = 0 to messages - 1 do
    let src = pids.(id mod procs) in
    Engine.inject engine ~at:(float_of_int (id mod 17)) src (fun ctx ->
        let dst = pids.((id * 7) mod procs) in
        Engine.send ctx ~dst (Ping id))
  done;
  Engine.run engine;
  (delivered, engine)

let exactly_once ~messages delivered =
  let ok = ref true in
  for id = 0 to messages - 1 do
    if Hashtbl.find_opt delivered id <> Some 1 then ok := false
  done;
  !ok && Hashtbl.length delivered = messages

let delivery_tests =
  [ qtest ~count:40 "exactly-once over arbitrary loss (p <= 0.6)"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 0.0 0.6 >>= fun loss ->
        int_range 2 8 >>= fun procs ->
        int_range 5 60 >|= fun messages -> (seed, loss, procs, messages))
      (fun (seed, loss, procs, messages) ->
        let delivered, engine = run_lossy ~seed ~loss ~procs ~messages () in
        exactly_once ~messages delivered
        && Engine.sends_abandoned engine = 0
        && Engine.channel_in_flight engine = 0);
    qtest ~count:30 "exactly-once through a finite partition"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 0.0 0.3 >>= fun loss ->
        float_range 1.0 40.0 >>= fun from_ ->
        float_range 10.0 120.0 >|= fun width -> (seed, loss, from_, width))
      (fun (seed, loss, from_, width) ->
        let messages = 30 in
        let delivered, engine =
          run_lossy ~seed ~loss ~procs:4 ~messages
            ~partition_window:(from_, from_ +. width) ()
        in
        exactly_once ~messages delivered
        && Engine.sends_abandoned engine = 0
        && Engine.channel_in_flight engine = 0);
    qtest ~count:30 "exactly-once under channel-level duplication"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 0.0 0.4 >>= fun loss ->
        float_range 0.0 0.5 >|= fun duplication -> (seed, loss, duplication))
      (fun (seed, loss, duplication) ->
        let messages = 40 in
        let delivered, engine =
          run_lossy ~seed ~loss ~procs:5 ~messages ~duplication ()
        in
        exactly_once ~messages delivered
        && Engine.sends_abandoned engine = 0);
    qtest ~count:30 "lossy runs retransmit but deliver no extras"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let messages = 40 in
        let delivered, engine =
          run_lossy ~seed ~loss:0.4 ~procs:4 ~messages ()
        in
        exactly_once ~messages delivered
        && Engine.messages_lost engine > 0
        && Engine.retransmissions engine >= Engine.messages_lost engine / 2)
  ]

(* ------------------------------------------------------------------ *)
(* backoff arithmetic *)

let config_gen =
  QCheck2.Gen.(
    float_range 0.1 10.0 >>= fun rto ->
    float_range 1.0 3.0 >>= fun backoff ->
    float_range 0.0 100.0 >>= fun extra ->
    int_range 0 60 >|= fun retries ->
    ( { Channel.default with rto; backoff; max_rto = rto +. extra },
      retries ))

let rec monotone = function
  | a :: (b :: _ as rest) -> a <= b && monotone rest
  | _ -> true

let backoff_tests =
  [ qtest ~count:200 "backoff delays are monotone non-decreasing up to cap"
      config_gen
      (fun (c, retries) ->
        let s = Channel.backoff_schedule c ~retries in
        List.length s = retries
        && monotone s
        && List.for_all (fun d -> d >= c.Channel.rto && d <= c.Channel.max_rto) s);
    Alcotest.test_case "default schedule reaches its cap and stays" `Quick
      (fun () ->
        let s = Channel.backoff_schedule Channel.default ~retries:50 in
        Alcotest.(check bool) "monotone" true (monotone s);
        Alcotest.(check (float 1e-9)) "capped" Channel.default.Channel.max_rto
          (List.nth s 49);
        Alcotest.(check (float 1e-9)) "starts at rto"
          Channel.default.Channel.rto (List.hd s));
    Alcotest.test_case "validate rejects bad configs" `Quick (fun () ->
        let bad f = try f (); false with Invalid_argument _ -> true in
        Alcotest.(check bool) "rto" true
          (bad (fun () -> Channel.validate { Channel.default with rto = 0.0 }));
        Alcotest.(check bool) "backoff" true
          (bad (fun () ->
               Channel.validate { Channel.default with backoff = 0.9 }));
        Alcotest.(check bool) "max_rto" true
          (bad (fun () ->
               Channel.validate { Channel.default with max_rto = 1.0 }));
        Alcotest.(check bool) "jitter" true
          (bad (fun () ->
               Channel.validate { Channel.default with jitter = -0.1 }));
        Alcotest.(check bool) "max_retries" true
          (bad (fun () ->
               Channel.validate { Channel.default with max_retries = -1 })))
  ]

(* ------------------------------------------------------------------ *)
(* the pure state machine, driven by hand *)

let sm_tests =
  [ Alcotest.test_case "receive is fresh once, duplicate after" `Quick
      (fun () ->
        let t = Channel.create Channel.default in
        Alcotest.(check bool) "fresh" true
          (Channel.receive t ~src:1 ~dst:2 ~seq:0 = `Fresh);
        Alcotest.(check bool) "dup" true
          (Channel.receive t ~src:1 ~dst:2 ~seq:0 = `Duplicate);
        Alcotest.(check bool) "other link fresh" true
          (Channel.receive t ~src:2 ~dst:1 ~seq:0 = `Fresh);
        Alcotest.(check int) "counted" 1 (Channel.duplicates_suppressed t));
    Alcotest.test_case "ack discharges and is idempotent" `Quick (fun () ->
        let t = Channel.create Channel.default in
        let seq = Channel.alloc_seq t ~src:1 ~dst:2 in
        let (_ : float) =
          Channel.register t ~src:1 ~dst:2 ~seq (Obj.repr "x")
        in
        Alcotest.(check int) "in flight" 1 (Channel.in_flight t);
        Channel.ack t ~src:1 ~dst:2 ~seq;
        Channel.ack t ~src:1 ~dst:2 ~seq;
        Alcotest.(check int) "discharged" 0 (Channel.in_flight t);
        Alcotest.(check bool) "timer is a no-op" true
          (Channel.on_timer t ~src:1 ~dst:2 ~seq = `Done));
    Alcotest.test_case "on_timer backs off then gives up" `Quick (fun () ->
        let c = { Channel.default with max_retries = 3 } in
        let t = Channel.create c in
        let seq = Channel.alloc_seq t ~src:1 ~dst:2 in
        let (_ : float) =
          Channel.register t ~src:1 ~dst:2 ~seq (Obj.repr "x")
        in
        let rtos = ref [] in
        let rec drive () =
          match Channel.on_timer t ~src:1 ~dst:2 ~seq with
          | `Retransmit (_, rto) ->
            rtos := rto :: !rtos;
            drive ()
          | `Give_up -> ()
          | `Done -> Alcotest.fail "unexpected `Done"
        in
        drive ();
        Alcotest.(check int) "retries" 3 (List.length !rtos);
        Alcotest.(check bool) "monotone" true (monotone (List.rev !rtos));
        Alcotest.(check int) "abandoned" 1 (Channel.abandoned t);
        Alcotest.(check int) "in flight" 0 (Channel.in_flight t));
    Alcotest.test_case "sequence numbers are per directed link" `Quick
      (fun () ->
        let t = Channel.create Channel.default in
        Alcotest.(check int) "1->2 first" 0 (Channel.alloc_seq t ~src:1 ~dst:2);
        Alcotest.(check int) "1->2 second" 1 (Channel.alloc_seq t ~src:1 ~dst:2);
        Alcotest.(check int) "2->1 independent" 0
          (Channel.alloc_seq t ~src:2 ~dst:1))
  ]

let () =
  Alcotest.run "channel"
    [ ("delivery", delivery_tests);
      ("backoff", backoff_tests);
      ("state-machine", sm_tests)
    ]

(* soda-lint end-to-end: run the linter over the fixture library and
   assert the exact diagnostic set — one finding per rule, at the line
   the fixture plants it, and nothing from the [@lint.allow] file.

   The test runs unsandboxed (see test/dune) so the relative paths below
   resolve inside _build/default. *)

let lint_exe = "../tools/lint/soda_lint.exe"
let fixtures_dir = "../tools/lint/fixtures"

type finding = { file : string; line : int; rule : string }

let finding_compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> String.compare a.rule b.rule
    | c -> c)
  | c -> c

let pp_finding ppf f = Format.fprintf ppf "%s:%d [%s]" f.file f.line f.rule

let finding_t = Alcotest.testable pp_finding (fun a b -> finding_compare a b = 0)

(* "<path>:<line>:<col>: [<RULE>] <msg>" *)
let parse_line line =
  match (String.index_opt line '[', String.split_on_char ':' line) with
  | Some i, path :: ln :: _ -> (
    match (String.index_from_opt line i ']', int_of_string_opt ln) with
    | Some j, Some n ->
      Some
        { file = Filename.basename path;
          line = n;
          rule = String.sub line (i + 1) (j - i - 1)
        }
    | _ -> None)
  | _ -> None

let run_lint flags =
  let cmd =
    Printf.sprintf "%s %s %s 2>/dev/null" lint_exe flags fixtures_dir
  in
  let ic = Unix.open_process_in cmd in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  let status = Unix.close_process_in ic in
  (lines, status)

let lint_output = lazy (run_lint "--all-rules")
let json_output = lazy (run_lint "--all-rules --json")

let expected =
  [ { file = "bad_a1.ml"; line = 10; rule = "A1" };
    { file = "bad_d1.ml"; line = 2; rule = "D1" };
    { file = "bad_d2.ml"; line = 2; rule = "D2" };
    { file = "bad_d3.ml"; line = 3; rule = "D3" };
    { file = "bad_e1.ml"; line = 2; rule = "E1" };
    { file = "bad_m1.ml"; line = 6; rule = "M1" };
    { file = "bad_m2.ml"; line = 5; rule = "M2" };
    { file = "bad_m3.ml"; line = 4; rule = "M3" };
    { file = "bad_m4.ml"; line = 8; rule = "M4" };
    { file = "bad_p1.ml"; line = 4; rule = "P1" };
    { file = "bad_p2.ml"; line = 2; rule = "P2" };
    { file = "bad_r1.ml"; line = 2; rule = "R1" };
    { file = "bad_s1.ml"; line = 3; rule = "S1" };
    { file = "bad_t1.ml"; line = 3; rule = "D1" };
    { file = "bad_t1.ml"; line = 5; rule = "T1" };
    { file = "bad_t2.ml"; line = 3; rule = "D2" };
    { file = "bad_t2.ml"; line = 5; rule = "T2" };
    { file = "bad_t3.ml"; line = 3; rule = "D3" };
    { file = "bad_t3.ml"; line = 5; rule = "T3" };
    { file = "bad_u1.ml"; line = 2; rule = "U1" };
    { file = "bad_u1.ml"; line = 4; rule = "U1" }
  ]

let test_diagnostic_set () =
  let lines, _ = Lazy.force lint_output in
  let found = List.filter_map parse_line lines |> List.sort finding_compare in
  Alcotest.(check (list finding_t))
    "one finding per rule, at the planted location" expected found

let test_exit_code () =
  let _, status = Lazy.force lint_output in
  match status with
  | Unix.WEXITED 1 -> ()
  | Unix.WEXITED n -> Alcotest.failf "expected exit 1, got exit %d" n
  | _ -> Alcotest.fail "linter killed by signal"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_suppression () =
  let lines, _ = Lazy.force lint_output in
  List.iter
    (fun line ->
      if contains ~sub:"good_allow" line then
        Alcotest.failf "suppressed fixture leaked a diagnostic: %s" line)
    lines

(* pull "<key>": <int> / "<key>": "<string>" out of one JSON object line;
   enough structure-awareness for the report format we emit *)
let json_field line key =
  let marker = Printf.sprintf "\"%s\": " key in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else find (i + 1)
  in
  Option.map
    (fun start ->
      let stop = ref start in
      let quoted = line.[start] = '"' in
      let start = if quoted then start + 1 else start in
      stop := start;
      while
        !stop < n
        &&
        if quoted then line.[!stop] <> '"'
        else match line.[!stop] with '0' .. '9' -> true | _ -> false
      do
        incr stop
      done;
      String.sub line start (!stop - start))
    (find 0)

let parse_json_line line =
  match
    ( json_field line "file",
      Option.bind (json_field line "line") int_of_string_opt,
      json_field line "rule" )
  with
  | Some file, Some line, Some rule ->
    Some { file = Filename.basename file; line; rule }
  | _ -> None

let test_json_report () =
  let lines, status = Lazy.force json_output in
  (match status with
  | Unix.WEXITED 1 -> ()
  | _ -> Alcotest.fail "json run should still exit 1 on violations");
  let found =
    List.filter_map parse_json_line lines |> List.sort finding_compare
  in
  Alcotest.(check (list finding_t))
    "JSON report carries the same findings" expected found;
  let all = String.concat "\n" lines in
  List.iter
    (fun sub ->
      if not (contains ~sub all) then
        Alcotest.failf "JSON report is missing %S" sub)
    [ "\"violations\""; "\"suppressed\""; "\"units\"" ]

let () =
  Alcotest.run "soda-lint"
    [ ( "fixtures",
        [ Alcotest.test_case "diagnostic set" `Quick test_diagnostic_set;
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "allow suppression" `Quick test_suppression;
          Alcotest.test_case "json report" `Quick test_json_report
        ] )
    ]

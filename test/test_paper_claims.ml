(* Capstone: the paper's qualitative claims, asserted as a test. If any
   refactor flips who wins on which axis, this suite fails even though
   every algorithm individually still works. *)

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics

let summarize algo w = Metrics.summarize (Runner.run algo w)

let claims_tests =
  [ Alcotest.test_case
      "Table I orderings hold at f = fmax: SODA wins storage outright; \
       CASGC wins per-op cost; delta makes CASGC storage worst of all"
      `Quick (fun () ->
        let n = 10 in
        let params = Params.make ~n ~f:(Params.fmax ~n) () in
        let w =
          Workload.sequential ~params ~value_len:4096 ~seed:42 ~rounds:4 ()
        in
        let abd = summarize Runner.Abd w in
        let casgc = summarize (Runner.Cas { gc_depth = Some 2 }) w in
        let soda = summarize Runner.Soda w in
        let check name b = Alcotest.(check bool) name true b in
        check "all atomic and live"
          (List.for_all
             (fun s -> s.Metrics.liveness && s.Metrics.atomic)
             [ abd; casgc; soda ]);
        (* storage: SODA far below both; at f = fmax with delta = 2,
           CASGC's (delta+1) * n/(n-2f) = 15 actually exceeds even ABD's
           n = 10 — Table I shows exactly that *)
        check "SODA storage < CASGC storage"
          (soda.Metrics.storage_max < casgc.Metrics.storage_final);
        check "SODA storage < ABD storage"
          (soda.Metrics.storage_max < abd.Metrics.storage_max);
        check "CASGC storage exceeds ABD's at fmax with delta=2"
          (casgc.Metrics.storage_final > abd.Metrics.storage_max);
        check "SODA storage < 2 (n/(n-f) at fmax)"
          (soda.Metrics.storage_max < 2.0);
        (* write cost: CASGC cheapest, ABD = n, SODA pays O(f^2) *)
        check "CASGC write < ABD write"
          (casgc.Metrics.write_cost.mean < abd.Metrics.write_cost.mean);
        check "ABD write < SODA write"
          (abd.Metrics.write_cost.mean < soda.Metrics.write_cost.mean);
        check "SODA write within 5f^2"
          (soda.Metrics.write_cost.max
          <= 5.0 *. float_of_int (Params.f params * Params.f params));
        (* read cost: SODA cheapest when quiescent *)
        check "SODA read < CASGC read"
          (soda.Metrics.read_cost.mean < casgc.Metrics.read_cost.mean);
        check "CASGC read < ABD read"
          (casgc.Metrics.read_cost.mean < abd.Metrics.read_cost.mean));
    Alcotest.test_case
      "the erasure-coding win of the introduction: two orders of magnitude \
       on 100 servers"
      `Quick (fun () ->
        (* "to store a value of 1 TB across a 100 server system, ABD
           blows up the worst-case storage cost to 100 TB ... with an
           [100, 50] MDS code the storage cost is simply 2 TB" *)
        let params = Params.make ~n:100 ~f:49 () in
        let w =
          Workload.sequential ~params ~value_len:8192 ~seed:1 ~rounds:1 ()
        in
        let soda = summarize Runner.Soda w in
        Alcotest.(check bool) "~2 units, not 100" true
          (soda.Metrics.storage_max < 2.1);
        let abd = summarize Runner.Abd w in
        Alcotest.(check bool) "ABD pays 100" true
          (abs_float (abd.Metrics.storage_max -. 100.0) < 1e-6);
        Alcotest.(check bool) "~50x apart" true
          (abd.Metrics.storage_max /. soda.Metrics.storage_max > 45.0));
    Alcotest.test_case
      "CAS without garbage collection accumulates versions; CASGC and SODA \
       do not"
      `Quick (fun () ->
        let params = Params.make ~n:8 ~f:2 () in
        let run rounds algo =
          (summarize algo
             (Workload.sequential ~params ~value_len:1024 ~seed:3 ~rounds ()))
            .Metrics.storage_max
        in
        (* CAS's storage grows linearly in the number of writes *)
        Alcotest.(check bool) "CAS grows" true
          (run 8 (Runner.Cas { gc_depth = None })
          > 1.9 *. run 3 (Runner.Cas { gc_depth = None }));
        (* CASGC's and SODA's do not *)
        Alcotest.(check bool) "CASGC flat" true
          (abs_float
             (run 8 (Runner.Cas { gc_depth = Some 2 })
             -. run 3 (Runner.Cas { gc_depth = Some 2 }))
          < 1e-9);
        Alcotest.(check bool) "SODA flat" true
          (abs_float (run 8 Runner.Soda -. run 3 Runner.Soda) < 1e-9));
    Alcotest.test_case
      "SODA tolerates f = n - k failures where CAS tolerates (n - k) / 2"
      `Quick (fun () ->
        (* claim (iii) of the comparison in Section I-B, read off the
           derived parameters *)
        let params = Params.make ~n:10 ~f:4 () in
        Alcotest.(check int) "SODA k at f=4" 6 (Params.k_soda params);
        Alcotest.(check int) "CAS k at f=4" 2 (Params.k_cas params);
        (* for the same code dimension k = 6, CAS could only tolerate
           (10 - 6) / 2 = 2 crashes *)
        let cas_equivalent = Params.make ~n:10 ~f:2 () in
        Alcotest.(check int) "CAS needs f=2 for k=6" 6
          (Params.k_cas cas_equivalent));
    Alcotest.test_case "systematic codec deployment behaves identically"
      `Quick (fun () ->
        let params = Params.make ~n:7 ~f:2 () in
        let run systematic =
          let engine =
            Simnet.Engine.create ~seed:5
              ~delay:(Simnet.Delay.uniform ~lo:0.3 ~hi:1.5) ()
          in
          let d =
            Soda.Deployment.deploy ~engine ~params
              ~initial_value:(Bytes.make 512 '0') ~systematic ~num_writers:1
              ~num_readers:1 ()
          in
          let result = ref None in
          Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 512 'x');
          Soda.Deployment.read d ~reader:0 ~at:50.0
            ~on_done:(fun v -> result := Some v)
            ();
          Simnet.Engine.run engine;
          ( !result,
            Cost.max_total_storage (Soda.Deployment.cost d),
            Erasure.Mds.name (Soda.Deployment.config d).Soda.Config.code )
        in
        let r1, s1, n1 = run false and r2, s2, n2 = run true in
        Alcotest.(check string) "vand name" "rs-vand[7,5]" n1;
        Alcotest.(check string) "sys name" "rs-sys[7,5]" n2;
        Alcotest.(check bool) "same read result" true
          (match (r1, r2) with
          | Some a, Some b -> Bytes.equal a b
          | _ -> false);
        Alcotest.(check (float 1e-9)) "same storage" s1 s2)
  ]

let () = Alcotest.run "paper-claims" [ ("claims", claims_tests) ]

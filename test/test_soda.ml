(* End-to-end tests of the SODA algorithm on the simulated network:
   liveness (Thm 5.1), atomicity (Thm 5.2), storage cost (Thm 5.3),
   write cost (Thm 5.4), reader unregistration (Thm 5.5), read cost vs
   delta_w (Thm 5.6), latency bounds (Thm 5.7), and the crash behaviour
   of the message-disperse primitives (Section III). *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity
module Tag = Protocol.Tag
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Standard acceptance for a run: all ops completed (clients non-faulty),
   tag-based atomicity holds, and when the history is small enough the
   exhaustive value-based checker agrees. *)
let accept ?(check_values = true) (r : Runner.result) =
  let records = History.records r.Runner.history in
  History.all_complete r.Runner.history
  && Atomicity.check_tagged ~initial_value:r.Runner.initial_value records
     = Ok ()
  && (not (check_values && List.length records <= 20)
     || Atomicity.linearizable_by_value ~initial_value:r.Runner.initial_value
          records)

let params_gen =
  QCheck2.Gen.(
    int_range 3 15 >>= fun n ->
    int_range 1 (max 1 (Params.fmax ~n)) >|= fun f ->
    Params.make ~n ~f ())

(* ------------------------------------------------------------------ *)
(* Functional basics *)

let basic_tests =
  [ Alcotest.test_case "read with no writes returns the initial value" `Quick
      (fun () ->
        let params = Params.make ~n:5 ~f:2 () in
        let engine = Engine.create ~seed:3 ~delay:(Delay.constant 1.0) () in
        let initial_value = Bytes.of_string "genesis" in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:1
            ~num_readers:1 ()
        in
        let result = ref None in
        Soda.Deployment.read d ~reader:0 ~at:0.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        (match !result with
        | Some v ->
          Alcotest.(check string) "initial" "genesis" (Bytes.to_string v)
        | None -> Alcotest.fail "read did not complete"));
    Alcotest.test_case "write then read returns the written value" `Quick
      (fun () ->
        let params = Params.make ~n:7 ~f:3 () in
        let engine =
          Engine.create ~seed:5 ~delay:(Delay.uniform ~lo:0.1 ~hi:1.5) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 32 '0') ~num_writers:1 ~num_readers:1
            ()
        in
        let written = Bytes.of_string "the new value, longer than before" in
        let result = ref None in
        Soda.Deployment.write d ~writer:0 ~at:0.0 written;
        Soda.Deployment.read d ~reader:0 ~at:100.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        (match !result with
        | Some v ->
          Alcotest.(check bool) "value" true (Bytes.equal v written)
        | None -> Alcotest.fail "read did not complete"));
    Alcotest.test_case "a chain of writes is observed in order" `Quick
      (fun () ->
        let params = Params.make ~n:6 ~f:2 () in
        let engine = Engine.create ~seed:7 ~delay:(Delay.constant 0.5) () in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.of_string "v0") ~num_writers:1
            ~num_readers:1 ()
        in
        let reads = ref [] in
        for i = 1 to 5 do
          let t = float_of_int i *. 50.0 in
          Soda.Deployment.write d ~writer:0 ~at:t
            (Bytes.of_string (Printf.sprintf "v%d" i));
          Soda.Deployment.read d ~reader:0 ~at:(t +. 25.0)
            ~on_done:(fun v -> reads := Bytes.to_string v :: !reads)
            ()
        done;
        Engine.run engine;
        Alcotest.(check (list string)) "order"
          [ "v1"; "v2"; "v3"; "v4"; "v5" ]
          (List.rev !reads));
    Alcotest.test_case "two writers interleave without losing atomicity"
      `Quick (fun () ->
        let params = Params.make ~n:8 ~f:3 () in
        let w =
          Workload.concurrent ~params ~value_len:128 ~num_writers:2
            ~num_readers:2 ~ops_per_client:3 ~seed:11 ()
        in
        let r = Runner.run Runner.Soda w in
        Alcotest.(check bool) "accepted" true (accept r));
    Alcotest.test_case "well-formedness violation raises" `Quick (fun () ->
        let params = Params.make ~n:5 ~f:1 () in
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 5.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params ~num_writers:1 ~num_readers:1
            ()
        in
        (* second write scheduled while the first is still in flight *)
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.of_string "a");
        Soda.Deployment.write d ~writer:0 ~at:1.0 (Bytes.of_string "b");
        Alcotest.check_raises "raises"
          (Invalid_argument
             "Writer.invoke: operation already in flight (well-formedness)")
          (fun () -> Engine.run engine))
  ]

(* ------------------------------------------------------------------ *)
(* Liveness and atomicity under randomized schedules and crashes *)

let random_execution_tests =
  [ qtest ~count:60 "liveness + atomicity on random concurrent workloads"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 100_000 >>= fun seed ->
        int_range 1 3 >>= fun nw ->
        int_range 1 3 >>= fun nr ->
        int_range 1 3 >|= fun ops -> (params, seed, nw, nr, ops))
      (fun (params, seed, nw, nr, ops) ->
        let w =
          Workload.concurrent ~params ~value_len:96 ~seed ~num_writers:nw
            ~num_readers:nr ~ops_per_client:ops
            ~delay:(Delay.exponential ~mean:1.0 ~cap:8.0) ()
        in
        accept (Runner.run Runner.Soda w));
    qtest ~count:40 "liveness + atomicity with f crashed servers"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 100_000 >>= fun seed ->
        (* choose f coordinates and crash times *)
        let n = Params.n params and f = Params.f params in
        shuffle_a (Array.init n (fun i -> i)) >>= fun perm ->
        list_size (return f) (float_range 0.0 500.0) >|= fun times ->
        (params, seed, List.mapi (fun i t -> (perm.(i), t)) times))
      (fun (params, seed, crashes) ->
        let w =
          Workload.concurrent ~params ~value_len:96 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2
            ~delay:(Delay.uniform ~lo:0.2 ~hi:3.0) ()
        in
        let w = Workload.with_crashes w crashes in
        accept (Runner.run Runner.Soda w));
    qtest ~count:30 "determinism: same workload, same outcome"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:7 ~f:2 () in
        let w =
          Workload.concurrent ~params ~value_len:64 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2 ()
        in
        let fingerprint r =
          List.map
            (fun o ->
              ( o.History.op,
                o.History.kind,
                o.History.invoked_at,
                o.History.responded_at,
                o.History.tag ))
            (History.records r.Runner.history)
        in
        fingerprint (Runner.run Runner.Soda w)
        = fingerprint (Runner.run Runner.Soda w))
  ]

(* ------------------------------------------------------------------ *)
(* Cost theorems *)

let cost_tests =
  [ qtest ~count:30 "Thm 5.3: total storage is exactly n/(n-f) fragments"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 10_000 >|= fun seed -> (params, seed))
      (fun (params, seed) ->
        let w =
          Workload.concurrent ~params ~value_len:512 ~seed ~num_writers:2
            ~num_readers:1 ~ops_per_client:2 ()
        in
        let r = Runner.run Runner.Soda w in
        (* every server stores exactly one coded element at all times *)
        let n = Params.n params and k = Params.k_soda params in
        let frag =
          Erasure.Splitter.fragment_size ~k ~value_len:512
        in
        let expected = float_of_int (n * frag) /. 512.0 in
        abs_float (Cost.max_total_storage r.Runner.cost -. expected) < 1e-9);
    qtest ~count:30 "Thm 5.4: write communication cost is below 5 f^2"
      QCheck2.Gen.(
        int_range 1 12 >>= fun f ->
        int_range (2 * f + 1) 25 >>= fun n ->
        int_range 0 10_000 >|= fun seed -> (n, f, seed))
      (fun (n, f, seed) ->
        let params = Params.make ~n ~f () in
        let w = Workload.sequential ~params ~value_len:2048 ~seed ~rounds:2 () in
        let r = Runner.run Runner.Soda w in
        let bound = 5.0 *. float_of_int (f * f) in
        History.records r.Runner.history
        |> List.filter (fun o -> o.History.kind = History.Write)
        |> List.for_all (fun o ->
               Cost.comm_of_op r.Runner.cost ~op:o.History.op
               <= Float.max bound 2.5
               (* for f = 1 the bound 5f^2 = 5 dominates anyway; the
                  max is defensive for tiny systems *)));
    qtest ~count:30
      "quiescent read costs between k and n coded elements (delta_w = 0)"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 10_000 >|= fun seed -> (params, seed))
      (fun (params, seed) ->
        (* the formula n/(n-f) is the worst case: a server whose
           READ-COMPLETE overtakes its READ-VALUE (tombstone path) never
           relays, so a quiescent read costs between k and n elements *)
        let w = Workload.sequential ~params ~value_len:512 ~seed ~rounds:2 () in
        let r = Runner.run Runner.Soda w in
        let n = Params.n params and k = Params.k_soda params in
        let frag = Erasure.Splitter.fragment_size ~k ~value_len:512 in
        let unit = float_of_int frag /. 512.0 in
        History.records r.Runner.history
        |> List.filter (fun o -> o.History.kind = History.Read)
        |> List.for_all (fun o ->
               let c = Cost.comm_of_op r.Runner.cost ~op:o.History.op in
               c >= (float_of_int k *. unit) -. 1e-9
               && c <= (float_of_int n *. unit) +. 1e-9));
    qtest ~count:40
      "Thm 5.6: read cost within n/(n-f) * (concurrent writes + 1)"
      QCheck2.Gen.(
        int_range 0 10_000 >>= fun seed ->
        int_range 1 4 >>= fun writers ->
        int_range 1 3 >|= fun wpw -> (seed, writers, wpw))
      (fun (seed, writers, wpw) ->
        (* the sound variant of delta_w: writes able to deliver a coded
           element inside the registration window; the paper's literal
           delta_w (initiations inside [T1,T2]) misses writes that start
           just before T1, see Metrics.concurrent_writes *)
        let params = Params.make ~n:9 ~f:3 () in
        let w =
          Workload.read_with_write_storm ~params ~value_len:512 ~seed ~writers
            ~writes_per_writer:wpw ()
        in
        let r = Runner.run Runner.Soda w in
        let n = Params.n params and k = Params.k_soda params in
        let frag = Erasure.Splitter.fragment_size ~k ~value_len:512 in
        let unit_cost = float_of_int (n * frag) /. 512.0 in
        (* the storm workload uses exponential delays capped at 12 *)
        let slack = 24.0 in
        Metrics.reads_with_delta_w r
        |> List.for_all (fun (rid, _, cost) ->
               match Metrics.concurrent_writes r ~rid ~slack with
               | None -> false
               | Some cw -> cost <= (unit_cost *. float_of_int (cw + 1)) +. 1e-9));
    qtest ~count:40 "relays to one reader are unique per (server, tag)"
      QCheck2.Gen.(
        int_range 0 10_000 >>= fun seed ->
        int_range 1 4 >|= fun writers -> (seed, writers))
      (fun (seed, writers) ->
        let params = Params.make ~n:9 ~f:3 () in
        let w =
          Workload.read_with_write_storm ~params ~value_len:512 ~seed ~writers
            ~writes_per_writer:2 ()
        in
        let r = Runner.run Runner.Soda w in
        let probe = Option.get r.Runner.probe in
        let seen = Hashtbl.create 64 in
        List.for_all
          (function
            | Probe.Relayed { rid; server; tag; _ } ->
              if Hashtbl.mem seen (rid, server, tag) then false
              else begin
                Hashtbl.add seen (rid, server, tag) ();
                true
              end
            | Probe.Registered _ | Probe.Unregistered _ | Probe.Stored _
            | Probe.Gc _ | Probe.Repair_started _ | Probe.Repaired _
            | Probe.Crash_injected _ | Probe.Rot_injected _
            | Probe.Suspected _ | Probe.Auto_repair _ | Probe.Rot_detected _
            | Probe.Scrub_repaired _ ->
              true)
          (Probe.events probe));
    Alcotest.test_case "read cost grows with write concurrency" `Quick
      (fun () ->
        (* across seeds, reads that overlapped more writes cost more *)
        let params = Params.make ~n:9 ~f:3 () in
        let samples =
          List.concat_map
            (fun seed ->
              let w =
                Workload.read_with_write_storm ~params ~value_len:512 ~seed
                  ~writers:4 ~writes_per_writer:3 ()
              in
              let r = Runner.run Runner.Soda w in
              List.filter_map
                (fun (rid, _, cost) ->
                  Option.map
                    (fun cw -> (cw, cost))
                    (Metrics.concurrent_writes r ~rid ~slack:24.0))
                (Metrics.reads_with_delta_w r))
            (List.init 25 (fun i -> i))
        in
        let low =
          List.filter_map
            (fun (cw, c) -> if cw <= 1 then Some c else None)
            samples
        in
        let high =
          List.filter_map
            (fun (cw, c) -> if cw >= 3 then Some c else None)
            samples
        in
        Alcotest.(check bool) "has contended samples" true (high <> []);
        let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
        if low <> [] then
          Alcotest.(check bool) "contended reads cost more" true
            (mean high > mean low))
  ]

(* ------------------------------------------------------------------ *)
(* Latency (Thm 5.7) *)

let latency_tests =
  [ qtest ~count:30 "write <= 5 delta, read <= 6 delta under bounded delay"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        float_range 0.5 3.0 >>= fun delta ->
        int_range 0 10_000 >|= fun seed -> (params, delta, seed))
      (fun (params, delta, seed) ->
        let w =
          Workload.sequential ~params ~value_len:256 ~seed
            ~delay:(Delay.constant delta) ~rounds:3 ()
        in
        let r = Runner.run Runner.Soda w in
        let slack = 0.1 (* disperse_step spacing *) in
        History.records r.Runner.history
        |> List.for_all (fun o ->
               match o.History.responded_at with
               | None -> false
               | Some finish ->
                 let latency = finish -. o.History.invoked_at in
                 (match o.History.kind with
                 | History.Write -> latency <= (5.0 *. delta) +. slack
                 | History.Read -> latency <= (6.0 *. delta) +. slack)));
    qtest ~count:20 "latency bounds also hold with random delays below delta"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let params = Params.make ~n:9 ~f:4 () in
        let delta = 2.0 in
        let w =
          Workload.sequential ~params ~value_len:256 ~seed
            ~delay:(Delay.uniform ~lo:0.1 ~hi:delta) ~rounds:3 ()
        in
        let r = Runner.run Runner.Soda w in
        History.records r.Runner.history
        |> List.for_all (fun o ->
               match o.History.responded_at with
               | None -> false
               | Some finish ->
                 finish -. o.History.invoked_at <= (6.0 *. delta) +. 0.1))
  ]

(* ------------------------------------------------------------------ *)
(* Crash scenarios for the message-disperse primitives and readers *)

let crash_tests =
  [ qtest ~count:60 "MD-VALUE uniformity under writer crash mid-dispersal"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 0.0 8.0 >|= fun crash_at -> (seed, crash_at))
      (fun (seed, crash_at) ->
        let params = Params.make ~n:7 ~f:3 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.5 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 64 'i') ~disperse_step:0.5
            ~num_writers:1 ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 64 'A');
        Soda.Deployment.crash_writer d ~writer:0 ~at:crash_at;
        Engine.run engine;
        (* uniformity: either no server adopted the write's tag, or every
           server did (f = 3 but no server crashes here) *)
        let adopted =
          List.init (Params.n params) (fun c ->
              Tag.( > )
                (Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:c))
                Tag.initial)
        in
        List.for_all Fun.id adopted || List.for_all not adopted);
    qtest ~count:60
      "MD-VALUE uniformity under writer + f server crashes mid-dispersal"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 2.0 6.0 >>= fun crash_at ->
        int_range 0 6 >>= fun c1 ->
        int_range 0 6 >>= fun c2 ->
        float_range 0.0 10.0 >>= fun t1 ->
        float_range 0.0 10.0 >|= fun t2 -> (seed, crash_at, (c1, t1), (c2, t2)))
      (fun (seed, crash_at, (c1, t1), (c2, t2)) ->
        let params = Params.make ~n:7 ~f:3 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.5 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 64 'i') ~disperse_step:0.5
            ~num_writers:1 ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 64 'A');
        Soda.Deployment.crash_writer d ~writer:0 ~at:crash_at;
        Soda.Deployment.crash_server d ~coordinate:c1 ~at:t1;
        if c2 <> c1 then Soda.Deployment.crash_server d ~coordinate:c2 ~at:t2;
        Engine.run engine;
        let alive c =
          not (Engine.is_crashed engine (Soda.Deployment.server_pid d ~coordinate:c))
        in
        let adopted c =
          Tag.( > )
            (Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:c))
            Tag.initial
        in
        let alive_coords =
          List.filter alive (List.init (Params.n params) Fun.id)
        in
        List.for_all adopted alive_coords
        || List.for_all (fun c -> not (adopted c)) alive_coords);
    qtest ~count:60 "Thm 5.5: crashed readers are eventually unregistered"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 100.0 115.0 >|= fun crash_at -> (seed, crash_at))
      (fun (seed, crash_at) ->
        let params = Params.make ~n:7 ~f:2 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.5 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 64 'i') ~num_writers:1 ~num_readers:1
            ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 64 'A');
        (* the read starts at 100; the reader crashes during it *)
        Soda.Deployment.read d ~reader:0 ~at:100.0 ();
        Soda.Deployment.crash_reader d ~reader:0 ~at:crash_at;
        (* concurrent writes keep arriving afterwards *)
        Soda.Deployment.write d ~writer:0 ~at:130.0 (Bytes.make 64 'B');
        Soda.Deployment.write d ~writer:0 ~at:160.0 (Bytes.make 64 'C');
        Engine.run engine;
        (* every server must have dropped the registration by quiescence *)
        List.for_all
          (fun c ->
            Soda.Server.registered_reads (Soda.Deployment.server d ~coordinate:c)
            = [])
          (List.init (Params.n params) Fun.id)
        && Probe.registrations_balanced (Soda.Deployment.probe d)
             ~crashed:(fun _ -> false));
    Alcotest.test_case "operations complete with exactly f crashes from t=0"
      `Quick (fun () ->
        let params = Params.make ~n:9 ~f:4 () in
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed:3 ~num_writers:2
            ~num_readers:2 ~ops_per_client:2 ()
        in
        let w =
          Workload.with_crashes w [ (0, 0.0); (2, 0.0); (5, 0.0); (8, 0.0) ]
        in
        let r = Runner.run Runner.Soda w in
        Alcotest.(check bool) "accepted" true (accept r))
  ]

(* ------------------------------------------------------------------ *)
(* Server state hygiene *)

let hygiene_tests =
  [ Alcotest.test_case "no registrations survive a quiescent run" `Quick
      (fun () ->
        let params = Params.make ~n:8 ~f:3 () in
        let engine =
          Engine.create ~seed:17 ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 32 'i') ~num_writers:2 ~num_readers:2
            ()
        in
        for i = 0 to 3 do
          let t = float_of_int i *. 60.0 in
          Soda.Deployment.write d ~writer:(i mod 2) ~at:t (Bytes.make 32 'x');
          Soda.Deployment.read d ~reader:(i mod 2) ~at:(t +. 20.0) ()
        done;
        Engine.run engine;
        List.iter
          (fun c ->
            Alcotest.(check (list int))
              (Printf.sprintf "server %d registered set" c)
              []
              (Soda.Server.registered_reads
                 (Soda.Deployment.server d ~coordinate:c)))
          (List.init (Params.n params) Fun.id));
    Alcotest.test_case "servers converge to the latest tag" `Quick (fun () ->
        let params = Params.make ~n:6 ~f:2 () in
        let engine =
          Engine.create ~seed:23 ~delay:(Delay.uniform ~lo:0.2 ~hi:1.5) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 32 'i') ~num_writers:1 ~num_readers:1
            ()
        in
        for i = 1 to 4 do
          Soda.Deployment.write d ~writer:0 ~at:(float_of_int i *. 50.0)
            (Bytes.make 32 (Char.chr (Char.code 'a' + i)))
        done;
        Engine.run engine;
        let tags =
          List.init (Params.n params) (fun c ->
              Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:c))
        in
        match tags with
        | [] -> Alcotest.fail "no servers"
        | t0 :: rest ->
          List.iter
            (fun t ->
              Alcotest.(check bool) "same tag" true (Tag.equal t t0))
            rest;
          Alcotest.(check int) "z = number of writes" 4 t0.Tag.z)
  ]

let ablation_tests =
  [ qtest ~count:40 "direct dispersal is atomic and live without crashes"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:7 ~f:3 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let initial_value = Workload.value ~len:96 ~seed ~index:999 in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value
            ~md_mode:`Direct ~num_writers:2 ~num_readers:2 ()
        in
        for i = 0 to 3 do
          let t = float_of_int i *. 60.0 in
          Soda.Deployment.write d ~writer:(i mod 2) ~at:t
            (Workload.value ~len:96 ~seed ~index:i);
          Soda.Deployment.read d ~reader:(i mod 2) ~at:(t +. 25.0) ()
        done;
        Engine.run engine;
        History.all_complete (Soda.Deployment.history d)
        && Atomicity.check_tagged ~initial_value
             (History.records (Soda.Deployment.history d))
           = Ok ());
    Alcotest.test_case
      "direct dispersal loses read liveness under writer + f crashes        (why MD-VALUE exists)"
      `Quick (fun () ->
        (* deterministic counterpart of the ablation-md benchmark: run
           both modes on identical fault schedules; chained must always
           serve the read, direct must fail for at least one seed *)
        let run md_mode seed =
          let params = Params.make ~n:7 ~f:3 () in
          let engine =
            Engine.create ~seed ~delay:(Delay.uniform ~lo:0.5 ~hi:2.0) ()
          in
          let d =
            Soda.Deployment.deploy ~engine ~params
              ~initial_value:(Bytes.make 64 'i') ~md_mode ~disperse_step:0.5
              ~num_writers:1 ~num_readers:1 ()
          in
          Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 64 'A');
          Soda.Deployment.crash_writer d ~writer:0 ~at:3.0;
          Soda.Deployment.crash_server d ~coordinate:(seed mod 7) ~at:10.0;
          Soda.Deployment.crash_server d ~coordinate:((seed + 2) mod 7) ~at:10.0;
          Soda.Deployment.crash_server d ~coordinate:((seed + 4) mod 7) ~at:10.0;
          let completed = ref false in
          Soda.Deployment.read d ~reader:0 ~at:50.0
            ~on_done:(fun _ -> completed := true)
            ();
          Engine.run engine;
          !completed
        in
        let seeds = List.init 40 (fun i -> i) in
        Alcotest.(check bool) "chained always serves the read" true
          (List.for_all (fun seed -> run `Chained seed) seeds);
        Alcotest.(check bool) "direct fails for some schedule" true
          (List.exists (fun seed -> not (run `Direct seed)) seeds));
    qtest ~count:30
      "without gossip, completed reads are still cleaned up via        READ-COMPLETE"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:6 ~f:2 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 64 'i') ~gossip:false ~num_writers:1
            ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 64 'a');
        Soda.Deployment.read d ~reader:0 ~at:50.0 ();
        Engine.run engine;
        History.all_complete (Soda.Deployment.history d)
        && List.for_all
             (fun c ->
               Soda.Server.registered_reads
                 (Soda.Deployment.server d ~coordinate:c)
               = [])
             (List.init 6 Fun.id))
  ]

let cross_validation_tests =
  [ qtest ~count:25
      "exhaustive value-based linearizability agrees on fully concurrent        histories"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        (* 7 writers and 7 readers all firing at once: 14 mutually
           concurrent operations, checked with the Wing-Gong search (no
           tags involved) as well as the Lemma 2.1 checker *)
        let params = Params.make ~n:7 ~f:2 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.exponential ~mean:1.0 ~cap:8.0) ()
        in
        let initial_value = Workload.value ~len:48 ~seed ~index:999 in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:7
            ~num_readers:7 ()
        in
        for i = 0 to 6 do
          Soda.Deployment.write d ~writer:i
            ~at:(float_of_int i *. 0.3)
            (Workload.value ~len:48 ~seed ~index:i);
          Soda.Deployment.read d ~reader:i ~at:(float_of_int i *. 0.4) ()
        done;
        Engine.run engine;
        let records = History.records (Soda.Deployment.history d) in
        History.all_complete (Soda.Deployment.history d)
        && Atomicity.check_tagged ~initial_value records = Ok ()
        && Atomicity.linearizable_by_value ~initial_value records)
  ]

let () =
  Alcotest.run "soda"
    [ ("basics", basic_tests);
      ("ablations", ablation_tests);
      ("cross-validation", cross_validation_tests);
      ("random-executions", random_execution_tests);
      ("costs", cost_tests);
      ("latency", latency_tests);
      ("crashes", crash_tests);
      ("hygiene", hygiene_tests)
    ]

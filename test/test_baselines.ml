(* Tests for the baseline algorithms: ABD (replication) and CAS/CASGC
   (erasure-coded, the paper's Table I comparators). Same acceptance
   criteria as SODA — liveness and atomicity under random schedules and
   crashes — plus their specific cost profiles. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Atomicity = Protocol.Atomicity
module Workload = Harness.Workload
module Runner = Harness.Runner

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let accept (r : Runner.result) =
  History.all_complete r.Runner.history
  && Atomicity.check_tagged ~initial_value:r.Runner.initial_value
       (History.records r.Runner.history)
     = Ok ()

let params_gen =
  QCheck2.Gen.(
    int_range 3 15 >>= fun n ->
    int_range 1 (max 1 (Params.fmax ~n)) >|= fun f -> Params.make ~n ~f ())

let crashes_gen params =
  QCheck2.Gen.(
    shuffle_a (Array.init (Params.n params) (fun i -> i)) >>= fun perm ->
    list_size (return (Params.f params)) (float_range 0.0 400.0)
    >|= fun times -> List.mapi (fun i t -> (perm.(i), t)) times)

(* ------------------------------------------------------------------ *)
(* ABD *)

let abd_tests =
  [ Alcotest.test_case "write then read round-trips" `Quick (fun () ->
        let params = Params.make ~n:5 ~f:2 () in
        let engine = Engine.create ~seed:4 ~delay:(Delay.constant 1.0) () in
        let d =
          Baselines.Abd.deploy ~engine ~params
            ~initial_value:(Bytes.of_string "init") ~num_writers:1
            ~num_readers:1 ()
        in
        let written = Bytes.of_string "replicated everywhere" in
        let result = ref None in
        Baselines.Abd.write d ~writer:0 ~at:0.0 written;
        Baselines.Abd.read d ~reader:0 ~at:50.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        (match !result with
        | Some v -> Alcotest.(check bool) "value" true (Bytes.equal v written)
        | None -> Alcotest.fail "read did not complete"));
    qtest ~count:50 "liveness + atomicity on random workloads"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 100_000 >|= fun seed -> (params, seed))
      (fun (params, seed) ->
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2
            ~delay:(Delay.exponential ~mean:1.0 ~cap:8.0) ()
        in
        accept (Runner.run Runner.Abd w));
    qtest ~count:40 "liveness + atomicity with f crashes"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        crashes_gen params >>= fun crashes ->
        int_range 0 100_000 >|= fun seed -> (params, crashes, seed))
      (fun (params, crashes, seed) ->
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2 ()
        in
        accept (Runner.run Runner.Abd (Workload.with_crashes w crashes)));
    qtest ~count:30 "costs: storage = n, write = n, quiescent read = n"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 10_000 >|= fun seed -> (params, seed))
      (fun (params, seed) ->
        let w = Workload.sequential ~params ~value_len:512 ~seed ~rounds:2 () in
        let r = Runner.run Runner.Abd w in
        let n = float_of_int (Params.n params) in
        let close a b = abs_float (a -. b) < 1e-9 in
        close (Cost.max_total_storage r.Runner.cost) n
        && History.records r.Runner.history
           |> List.for_all (fun o ->
                  close (Cost.comm_of_op r.Runner.cost ~op:o.History.op) n))
  ]

(* ------------------------------------------------------------------ *)
(* CAS / CASGC *)

let cas_tests =
  [ Alcotest.test_case "write then read round-trips (CAS)" `Quick (fun () ->
        let params = Params.make ~n:7 ~f:2 () in
        let engine = Engine.create ~seed:8 ~delay:(Delay.constant 1.0) () in
        let d =
          Baselines.Cas.deploy ~engine ~params
            ~initial_value:(Bytes.of_string "init") ~num_writers:1
            ~num_readers:1 ()
        in
        let written = Bytes.of_string "coded across the quorum system" in
        let result = ref None in
        Baselines.Cas.write d ~writer:0 ~at:0.0 written;
        Baselines.Cas.read d ~reader:0 ~at:50.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        (match !result with
        | Some v -> Alcotest.(check bool) "value" true (Bytes.equal v written)
        | None -> Alcotest.fail "read did not complete"));
    qtest ~count:50 "CAS: liveness + atomicity on random workloads"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 100_000 >|= fun seed -> (params, seed))
      (fun (params, seed) ->
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2
            ~delay:(Delay.exponential ~mean:1.0 ~cap:8.0) ()
        in
        accept (Runner.run (Runner.Cas { gc_depth = None }) w));
    qtest ~count:40 "CAS: liveness + atomicity with f crashes"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        crashes_gen params >>= fun crashes ->
        int_range 0 100_000 >|= fun seed -> (params, crashes, seed))
      (fun (params, crashes, seed) ->
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2 ()
        in
        accept
          (Runner.run (Runner.Cas { gc_depth = None })
             (Workload.with_crashes w crashes)));
    qtest ~count:40 "CASGC: liveness + atomicity within the delta bound"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 100_000 >>= fun seed ->
        int_range 2 5 >|= fun delta -> (params, seed, delta))
      (fun (params, seed, delta) ->
        (* two writers: at most 2 writes overlap any read, within delta *)
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2 ()
        in
        let r = Runner.run (Runner.Cas { gc_depth = Some delta }) w in
        accept r && r.Runner.read_restarts = 0);
    qtest ~count:30
      "costs: write = read = n/(n-2f); CAS storage grows with writes"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 10_000 >|= fun seed -> (params, seed))
      (fun (params, seed) ->
        let rounds = 3 in
        let w =
          Workload.sequential ~params ~value_len:512 ~seed ~rounds ()
        in
        let r = Runner.run (Runner.Cas { gc_depth = None }) w in
        let n = Params.n params and k = Params.k_cas params in
        let frag = Erasure.Splitter.fragment_size ~k ~value_len:512 in
        let unit_cost = float_of_int (n * frag) /. 512.0 in
        let close a b = abs_float (a -. b) < 1e-9 in
        (* every version ever written is retained: initial + rounds *)
        close
          (Cost.max_total_storage r.Runner.cost)
          (unit_cost *. float_of_int (rounds + 1))
        && History.records r.Runner.history
           |> List.for_all (fun o ->
                  close (Cost.comm_of_op r.Runner.cost ~op:o.History.op) unit_cost));
    qtest ~count:30 "CASGC bounds storage at (delta + 1) versions"
      QCheck2.Gen.(
        params_gen >>= fun params ->
        int_range 0 10_000 >>= fun seed ->
        int_range 0 2 >|= fun delta -> (params, seed, delta))
      (fun (params, seed, delta) ->
        let rounds = 5 in
        let w = Workload.sequential ~params ~value_len:512 ~seed ~rounds () in
        let r = Runner.run (Runner.Cas { gc_depth = Some delta }) w in
        let n = Params.n params and k = Params.k_cas params in
        let frag = Erasure.Splitter.fragment_size ~k ~value_len:512 in
        let unit_cost = float_of_int (n * frag) /. 512.0 in
        (* sequential workload: at most delta+1 finalized versions, plus
           one in-flight pre-write version transiently *)
        Cost.max_total_storage r.Runner.cost
        <= (unit_cost *. float_of_int (delta + 2)) +. 1e-9);
    Alcotest.test_case "CASGC storage strictly below CAS on a long run"
      `Quick (fun () ->
        let params = Params.make ~n:8 ~f:2 () in
        let w = Workload.sequential ~params ~value_len:512 ~seed:5 ~rounds:8 () in
        let cas = Runner.run (Runner.Cas { gc_depth = None }) w in
        let casgc = Runner.run (Runner.Cas { gc_depth = Some 1 }) w in
        Alcotest.(check bool) "bounded" true
          (Cost.max_total_storage casgc.Runner.cost
          < Cost.max_total_storage cas.Runner.cost))
  ]

(* ------------------------------------------------------------------ *)
(* LDR *)

(* a self-contained runner for LDR (it has its own two-role topology, so
   it does not go through Harness.Runner) *)
let run_ldr ~params ~seed ?(crash_dirs = []) ?(crash_replicas = [])
    ~ops () =
  let initial_value = Bytes.make 96 'i' in
  let engine =
    Engine.create ~seed ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
  in
  let d =
    Baselines.Ldr.deploy ~engine ~params ~initial_value ~num_writers:2
      ~num_readers:2 ()
  in
  List.iter (fun (i, at) -> Baselines.Ldr.crash_directory d ~index:i ~at)
    crash_dirs;
  List.iter (fun (i, at) -> Baselines.Ldr.crash_replica d ~index:i ~at)
    crash_replicas;
  for i = 0 to ops - 1 do
    let t = float_of_int i *. 50.0 in
    Baselines.Ldr.write d ~writer:(i mod 2) ~at:t
      (Bytes.make 96 (Char.chr (Char.code 'a' + i)));
    Baselines.Ldr.read d ~reader:(i mod 2) ~at:(t +. 10.0) ()
  done;
  Engine.run engine;
  (d, initial_value)

let ldr_accept (d, initial_value) =
  History.all_complete (Baselines.Ldr.history d)
  && Atomicity.check_tagged ~initial_value
       (History.records (Baselines.Ldr.history d))
     = Ok ()

let ldr_tests =
  [ Alcotest.test_case "write then read round-trips" `Quick (fun () ->
        let params = Params.make ~n:5 ~f:2 () in
        let engine = Engine.create ~seed:2 ~delay:(Delay.constant 1.0) () in
        let d =
          Baselines.Ldr.deploy ~engine ~params
            ~initial_value:(Bytes.of_string "init") ~num_writers:1
            ~num_readers:1 ()
        in
        Alcotest.(check int) "directories" 5 (Baselines.Ldr.directories d);
        Alcotest.(check int) "replicas" 5 (Baselines.Ldr.replicas d);
        let written = Bytes.of_string "directories point to replicas" in
        let result = ref None in
        Baselines.Ldr.write d ~writer:0 ~at:0.0 written;
        Baselines.Ldr.read d ~reader:0 ~at:50.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        match !result with
        | Some v -> Alcotest.(check bool) "value" true (Bytes.equal v written)
        | None -> Alcotest.fail "read did not complete");
    qtest ~count:50 "liveness + atomicity on random interleavings"
      QCheck2.Gen.(
        int_range 1 5 >>= fun f ->
        int_range 0 100_000 >|= fun seed -> (f, seed))
      (fun (f, seed) ->
        let params = Params.make ~n:((2 * f) + 1) ~f () in
        ldr_accept (run_ldr ~params ~seed ~ops:4 ()));
    qtest ~count:40 "liveness + atomicity with f directory and f replica \
                     crashes"
      QCheck2.Gen.(
        int_range 1 4 >>= fun f ->
        int_range 0 100_000 >>= fun seed ->
        shuffle_a (Array.init ((2 * f) + 1) (fun i -> i)) >>= fun dperm ->
        shuffle_a (Array.init ((2 * f) + 1) (fun i -> i)) >|= fun rperm ->
        (f, seed, Array.sub dperm 0 f, Array.sub rperm 0 f))
      (fun (f, seed, dcrash, rcrash) ->
        let params = Params.make ~n:((2 * f) + 1) ~f () in
        let stagger i = float_of_int (i * 37) in
        ldr_accept
          (run_ldr ~params ~seed
             ~crash_dirs:(Array.to_list (Array.mapi (fun i c -> (c, stagger i)) dcrash))
             ~crash_replicas:(Array.to_list (Array.mapi (fun i c -> (c, stagger i +. 11.0)) rcrash))
             ~ops:3 ()));
    Alcotest.test_case "costs: storage = write = 2f+1, quiescent read <= f+1"
      `Quick (fun () ->
        let f = 2 in
        let params = Params.make ~n:5 ~f () in
        let value_len = 512 in
        let initial_value = Bytes.make value_len 'i' in
        let engine = Engine.create ~seed:4 ~delay:(Delay.constant 1.0) () in
        let d =
          Baselines.Ldr.deploy ~engine ~params ~initial_value ~num_writers:1
            ~num_readers:1 ()
        in
        Baselines.Ldr.write d ~writer:0 ~at:0.0 (Bytes.make value_len 'A');
        Baselines.Ldr.read d ~reader:0 ~at:50.0 ();
        Engine.run engine;
        let cost = Baselines.Ldr.cost d in
        let close a b = abs_float (a -. b) < 1e-9 in
        Alcotest.(check bool) "storage 2f+1" true
          (close (Cost.max_total_storage cost) 5.0);
        Alcotest.(check bool) "write 2f+1" true
          (close (Cost.comm_of_op cost ~op:0) 5.0);
        let read_cost = Cost.comm_of_op cost ~op:1 in
        Alcotest.(check bool)
          (Printf.sprintf "read %.2f <= f+1" read_cost)
          true
          (read_cost <= float_of_int (f + 1) +. 1e-9))
  ]

let () =
  Alcotest.run "baselines"
    [ ("abd", abd_tests); ("cas", cas_tests); ("ldr", ldr_tests) ]

(* White-box tests of the message-disperse primitives (Section III) and
   the server automaton's Fig. 5 transitions, driven by crafted messages
   from a test-driver process rather than by the full client automata. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module Tag = Protocol.Tag
module Mds = Erasure.Mds
module Fragment = Erasure.Fragment

(* A rig: an n-server SODA deployment plus one driver process that can
   send arbitrary protocol messages and records everything it
   receives. *)
type rig = {
  engine : Soda.Messages.t Engine.t;
  deployment : Soda.Deployment.t;
  driver : int;
  inbox : (int * Soda.Messages.t) list ref  (* (src, message), reversed *)
}

let make_rig ?(n = 5) ?(f = 1) ?(delay = Delay.constant 1.0) ?(seed = 1) () =
  let params = Params.make ~n ~f () in
  let engine = Engine.create ~seed ~delay () in
  let deployment =
    Soda.Deployment.deploy ~engine ~params ~initial_value:(Bytes.make 40 'i')
      ~num_writers:1 ~num_readers:1 ()
  in
  let driver = Engine.reserve engine ~name:"driver" in
  let inbox = ref [] in
  Engine.set_handler engine driver (fun _ ~src msg ->
      inbox := (src, msg) :: !inbox);
  { engine; deployment; driver; inbox }

let send_at rig ~at ~dst msg =
  Engine.inject rig.engine ~at rig.driver (fun ctx -> Engine.send ctx ~dst msg)

let server_pid rig c = Soda.Deployment.server_pid rig.deployment ~coordinate:c
let server rig c = Soda.Deployment.server rig.deployment ~coordinate:c
let code rig = (Soda.Deployment.config rig.deployment).Soda.Config.code

let received rig p = List.filter p (List.rev !(rig.inbox))

let mid rig seq = Soda.Messages.mid ~origin:rig.driver ~seq

(* a full-value dispersal message as the writer would send it *)
let md_full rig ~seq ~tag ~value =
  Soda.Messages.Md_full { mid = mid rig seq; op = 900 + seq; tag; value }

let read_value ~rid ~reader ~tr =
  Soda.Messages.Md_meta
    { mid = Soda.Messages.mid ~origin:reader ~seq:(7000 + rid);
      meta = Soda.Messages.Read_value { rid; reader; tr }
    }

let read_complete ~rid ~reader ~tr ~seq =
  Soda.Messages.Md_meta
    { mid = Soda.Messages.mid ~origin:reader ~seq;
      meta = Soda.Messages.Read_complete { rid; reader; tr }
    }

let read_disperse ~origin ~seq ~tag ~server_index ~rid =
  Soda.Messages.Md_meta
    { mid = Soda.Messages.mid ~origin ~seq;
      meta = Soda.Messages.Read_disperse { tag; server_index; rid }
    }

(* ------------------------------------------------------------------ *)
(* MD-VALUE *)

let md_value_tests =
  [ Alcotest.test_case "validity: every server delivers its own coded element"
      `Quick (fun () ->
        let rig = make_rig () in
        (* the driver plays writer: tag's writer id = driver pid so acks
           come back to it *)
        let tag = Tag.make ~z:1 ~w:rig.driver in
        let value = Bytes.of_string "forty-two bytes of payload for SODA!" in
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (md_full rig ~seq:0 ~tag ~value);
        Engine.run rig.engine;
        let expected = Mds.encode (code rig) value in
        List.iteri
          (fun c _ ->
            let s = server rig c in
            Alcotest.(check bool)
              (Printf.sprintf "server %d stored tag" c)
              true
              (Tag.equal (Soda.Server.stored_tag s) tag))
          (List.init 5 Fun.id);
        (* fragment correctness is visible through a read: decoding the
           stored fragments must reproduce the value; we check
           coordinate-level equality through the ack count and the
           expected array length here *)
        Alcotest.(check int) "n coded elements" 5 (Array.length expected));
    Alcotest.test_case
      "uniformity: one Md_full to a single D-server reaches everyone" `Quick
      (fun () ->
        (* models the writer crashing after its very first send *)
        let rig = make_rig ~n:7 ~f:2 () in
        let tag = Tag.make ~z:1 ~w:rig.driver in
        let value = Bytes.make 30 'V' in
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (md_full rig ~seq:0 ~tag ~value);
        Engine.run rig.engine;
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Printf.sprintf "server %d adopted" c)
              true
              (Tag.equal (Soda.Server.stored_tag (server rig c)) tag))
          (List.init 7 Fun.id));
    Alcotest.test_case "each server acknowledges a dispersal exactly once"
      `Quick (fun () ->
        let rig = make_rig () in
        let tag = Tag.make ~z:1 ~w:rig.driver in
        let value = Bytes.make 30 'V' in
        (* send the same mid to both D members: plenty of duplicate
           paths, but dedup must keep delivery unique *)
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (md_full rig ~seq:0 ~tag ~value);
        send_at rig ~at:0.0 ~dst:(server_pid rig 1)
          (md_full rig ~seq:0 ~tag ~value);
        Engine.run rig.engine;
        let acks =
          received rig (fun (_, m) ->
              match m with Soda.Messages.Write_ack _ -> true | _ -> false)
        in
        Alcotest.(check int) "n acks" 5 (List.length acks);
        let distinct_sources =
          List.sort_uniq compare (List.map fst acks)
        in
        Alcotest.(check int) "from distinct servers" 5
          (List.length distinct_sources));
    Alcotest.test_case
      "a coded element sent only to an outside-D server goes nowhere else"
      `Quick (fun () ->
        let rig = make_rig () in
        let tag = Tag.make ~z:1 ~w:rig.driver in
        let value = Bytes.make 30 'V' in
        let fragments = Mds.encode (code rig) value in
        send_at rig ~at:0.0 ~dst:(server_pid rig 4)
          (Soda.Messages.Md_coded
             { mid = mid rig 0; op = 900; tag; fragment = fragments.(4) });
        Engine.run rig.engine;
        Alcotest.(check bool) "server 4 adopted" true
          (Tag.equal (Soda.Server.stored_tag (server rig 4)) tag);
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Printf.sprintf "server %d untouched" c)
              true
              (Tag.equal (Soda.Server.stored_tag (server rig c)) Tag.initial))
          [ 0; 1; 2; 3 ]);
    Alcotest.test_case "older dispersals do not overwrite newer tags" `Quick
      (fun () ->
        let rig = make_rig () in
        let newer = Tag.make ~z:5 ~w:rig.driver in
        let older = Tag.make ~z:2 ~w:rig.driver in
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (md_full rig ~seq:0 ~tag:newer ~value:(Bytes.make 30 'N'));
        send_at rig ~at:50.0 ~dst:(server_pid rig 0)
          (md_full rig ~seq:1 ~tag:older ~value:(Bytes.make 30 'O'));
        Engine.run rig.engine;
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Printf.sprintf "server %d keeps newer" c)
              true
              (Tag.equal (Soda.Server.stored_tag (server rig c)) newer))
          (List.init 5 Fun.id);
        (* the older dispersal is still acknowledged (liveness of its
           writer) *)
        let acks =
          received rig (fun (_, m) ->
              match m with
              | Soda.Messages.Write_ack { tag; _ } -> Tag.equal tag older
              | _ -> false)
        in
        Alcotest.(check int) "old write still acked by all" 5
          (List.length acks))
  ]

(* ------------------------------------------------------------------ *)
(* Server transitions (Fig. 5) *)

let server_tests =
  [ Alcotest.test_case "WRITE-GET and READ-GET return the stored tag" `Quick
      (fun () ->
        let rig = make_rig () in
        send_at rig ~at:0.0 ~dst:(server_pid rig 2)
          (Soda.Messages.Write_get { op = 1 });
        send_at rig ~at:0.0 ~dst:(server_pid rig 2)
          (Soda.Messages.Read_get { rid = 2 });
        Engine.run rig.engine;
        let replies = received rig (fun _ -> true) in
        Alcotest.(check int) "two replies" 2 (List.length replies);
        List.iter
          (fun (_, m) ->
            match m with
            | Soda.Messages.Write_get_reply { tag; _ }
            | Soda.Messages.Read_get_reply { tag; _ } ->
              Alcotest.(check bool) "initial tag" true (Tag.equal tag Tag.initial)
            | _ -> Alcotest.fail "unexpected reply")
          replies);
    Alcotest.test_case "READ-VALUE registers and relays when t >= tr" `Quick
      (fun () ->
        let rig = make_rig () in
        (* MD-META dispersals enter via the set D of the first f+1
           servers, in order — so a crash-truncated dispersal is always a
           prefix of D, and sending only to coordinate 0 models a sender
           that crashed after its first send *)
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (read_value ~rid:11 ~reader:rig.driver ~tr:Tag.initial);
        Engine.run rig.engine;
        (* registration went through MD, so every server registered
           (visible in the probe log), every server relayed its stored
           element once — and then the k-threshold (Thm 5.5) unregistered
           them all again, driver silence notwithstanding *)
        let probe = Soda.Deployment.probe rig.deployment in
        let count p =
          List.length (List.filter p (Protocol.Probe.events probe))
        in
        Alcotest.(check int) "5 registrations" 5
          (count (function
            | Protocol.Probe.Registered { rid = 11; _ } -> true
            | _ -> false));
        Alcotest.(check int) "5 unregistrations" 5
          (count (function
            | Protocol.Probe.Unregistered { rid = 11; _ } -> true
            | _ -> false));
        let relays =
          received rig (fun (_, m) ->
              match m with
              | Soda.Messages.Relay { rid = 11; _ } -> true
              | _ -> false)
        in
        Alcotest.(check int) "n relays" 5 (List.length relays);
        List.iter
          (fun c ->
            Alcotest.(check (list int))
              (Printf.sprintf "server %d eventually unregistered" c)
              []
              (Soda.Server.registered_reads (server rig c)))
          (List.init 5 Fun.id));
    Alcotest.test_case "READ-VALUE with tr above the stored tag: no relay \
                        until a matching write arrives"
      `Quick (fun () ->
        let rig = make_rig () in
        let future = Tag.make ~z:3 ~w:999 in
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (read_value ~rid:12 ~reader:rig.driver ~tr:future);
        Engine.run rig.engine;
        Alcotest.(check int) "no relay yet" 0
          (List.length
             (received rig (fun (_, m) ->
                  match m with Soda.Messages.Relay _ -> true | _ -> false)));
        Alcotest.(check (list int)) "still registered" [ 12 ]
          (Soda.Server.registered_reads (server rig 0));
        (* now a write with tag >= tr flows in (z = 4 beats tr's z = 3
           regardless of writer ids) *)
        send_at rig ~at:100.0 ~dst:(server_pid rig 0)
          (md_full rig ~seq:1 ~tag:(Tag.make ~z:4 ~w:rig.driver)
             ~value:(Bytes.make 30 'W'));
        Engine.run rig.engine;
        let relays =
          received rig (fun (_, m) ->
              match m with
              | Soda.Messages.Relay { rid = 12; _ } -> true
              | _ -> false)
        in
        Alcotest.(check int) "now all servers relay" 5 (List.length relays));
    Alcotest.test_case
      "READ-COMPLETE before READ-VALUE leaves a tombstone: no registration"
      `Quick (fun () ->
        let rig = make_rig () in
        let s0 = server_pid rig 0 in
        (* completion first *)
        send_at rig ~at:0.0 ~dst:s0
          (read_complete ~rid:13 ~reader:rig.driver ~tr:Tag.initial ~seq:50);
        Engine.run rig.engine;
        (* then the (late) registration *)
        send_at rig ~at:100.0 ~dst:s0
          (read_value ~rid:13 ~reader:rig.driver ~tr:Tag.initial);
        Engine.run rig.engine;
        List.iter
          (fun c ->
            Alcotest.(check (list int))
              (Printf.sprintf "server %d has no registration" c)
              []
              (Soda.Server.registered_reads (server rig c)))
          (List.init 5 Fun.id);
        Alcotest.(check int) "and no relays were sent" 0
          (List.length
             (received rig (fun (_, m) ->
                  match m with Soda.Messages.Relay _ -> true | _ -> false))));
    Alcotest.test_case
      "READ-DISPERSE from k distinct servers unregisters; duplicates do not \
       count"
      `Quick (fun () ->
        let rig = make_rig () in
        (* k = n - f = 4; register without triggering the server's own
           relay by asking for a future tag *)
        let future = Tag.make ~z:9 ~w:999 in
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (read_value ~rid:14 ~reader:rig.driver ~tr:future);
        Engine.run rig.engine;
        Alcotest.(check (list int)) "registered" [ 14 ]
          (Soda.Server.registered_reads (server rig 2));
        (* 3 distinct announcers + a duplicate: still below threshold *)
        List.iteri
          (fun i server_index ->
            send_at rig ~at:(100.0 +. float_of_int i) ~dst:(server_pid rig 2)
              (read_disperse ~origin:rig.driver ~seq:(60 + i) ~tag:future
                 ~server_index ~rid:14))
          [ 0; 1; 3; 3 ];
        Engine.run rig.engine;
        Alcotest.(check (list int)) "still registered after 3+dup" [ 14 ]
          (Soda.Server.registered_reads (server rig 2));
        (* the fourth distinct announcement tips it over *)
        send_at rig ~at:200.0 ~dst:(server_pid rig 2)
          (read_disperse ~origin:rig.driver ~seq:70 ~tag:future ~server_index:4
             ~rid:14);
        Engine.run rig.engine;
        Alcotest.(check (list int)) "unregistered" []
          (Soda.Server.registered_reads (server rig 2));
        Alcotest.(check int) "history cleared" 0
          (Soda.Server.history_entries (server rig 2)));
    Alcotest.test_case
      "one coalesced gossip with k distinct entries unregisters like k \
       standalone READ-DISPERSE messages"
      `Quick (fun () ->
        let rig = make_rig () in
        let future = Tag.make ~z:9 ~w:999 in
        let entry ~rid server_index =
          { Soda.Messages.tag = future; server_index; rid }
        in
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (read_value ~rid:16 ~reader:rig.driver ~tr:future);
        Engine.run rig.engine;
        Alcotest.(check (list int)) "registered" [ 16 ]
          (Soda.Server.registered_reads (server rig 2));
        (* k = n - f = 4 distinct announcers in a single message *)
        send_at rig ~at:100.0 ~dst:(server_pid rig 2)
          (Soda.Messages.Gossip
             { entries = List.map (entry ~rid:16) [ 0; 1; 3; 4 ] });
        Engine.run rig.engine;
        Alcotest.(check (list int)) "unregistered by one coalesced message" []
          (Soda.Server.registered_reads (server rig 2));
        Alcotest.(check int) "history cleared" 0
          (Soda.Server.history_entries (server rig 2));
        (* 3 distinct + 1 duplicate stays below the threshold even when
           the entries ride an envelope; the envelope's payload is still
           processed *)
        send_at rig ~at:200.0 ~dst:(server_pid rig 0)
          (read_value ~rid:17 ~reader:rig.driver ~tr:future);
        Engine.run rig.engine;
        send_at rig ~at:300.0 ~dst:(server_pid rig 2)
          (Soda.Messages.Envelope
             { entries = List.map (entry ~rid:17) [ 0; 1; 3; 3 ];
               msg =
                 read_disperse ~origin:rig.driver ~seq:90 ~tag:future
                   ~server_index:0 ~rid:17
             });
        Engine.run rig.engine;
        (* envelope entries (3 distinct) + payload announcement for the
           same announcer 0 = still only 3 distinct: registered *)
        Alcotest.(check (list int)) "still registered after 3+dup" [ 17 ]
          (Soda.Server.registered_reads (server rig 2));
        (* the fourth distinct announcer inside a second envelope tips it *)
        send_at rig ~at:400.0 ~dst:(server_pid rig 2)
          (Soda.Messages.Gossip { entries = [ entry ~rid:17 4 ] });
        Engine.run rig.engine;
        Alcotest.(check (list int)) "then unregistered" []
          (Soda.Server.registered_reads (server rig 2)));
    Alcotest.test_case "mixed-tag announcements never reach the threshold"
      `Quick (fun () ->
        let rig = make_rig () in
        let future = Tag.make ~z:9 ~w:999 in
        send_at rig ~at:0.0 ~dst:(server_pid rig 0)
          (read_value ~rid:15 ~reader:rig.driver ~tr:future);
        Engine.run rig.engine;
        (* 4 announcements but for two different tags: 2 + 2 < k = 4 *)
        List.iteri
          (fun i (z, server_index) ->
            send_at rig ~at:(100.0 +. float_of_int i) ~dst:(server_pid rig 2)
              (read_disperse ~origin:rig.driver ~seq:(80 + i)
                 ~tag:(Tag.make ~z ~w:999) ~server_index ~rid:15))
          [ (9, 0); (9, 1); (10, 2); (10, 3) ];
        Engine.run rig.engine;
        Alcotest.(check (list int)) "still registered" [ 15 ]
          (Soda.Server.registered_reads (server rig 2)))
  ]

let () =
  Alcotest.run "md-and-server"
    [ ("md-value", md_value_tests); ("server-fig5", server_tests) ]

(* Tests for the experiment harness itself: workload construction,
   runner determinism and uniformity across algorithms, metric
   extraction, and the report renderer. *)

module Params = Protocol.Params
module History = Protocol.History
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics
module Report = Harness.Report

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let params = Params.make ~n:8 ~f:3 ()

let workload_tests =
  [ qtest "values are deterministic and distinct per index"
      QCheck2.Gen.(pair (int_range 1 500) (int_range 0 1000))
      (fun (len, seed) ->
        let a = Workload.value ~len ~seed ~index:1 in
        let b = Workload.value ~len ~seed ~index:1 in
        let c = Workload.value ~len ~seed ~index:2 in
        Bytes.equal a b && not (Bytes.equal a c) && Bytes.length a = len);
    Alcotest.test_case "sequential workload shape" `Quick (fun () ->
        let w = Workload.sequential ~params ~rounds:4 () in
        Alcotest.(check int) "ops" 8 (Workload.total_ops w);
        Alcotest.(check int) "writes" 4 (Workload.writes w);
        Alcotest.(check int) "reads" 4 (Workload.reads w);
        (* strictly alternating and increasing times *)
        let times =
          List.map
            (function
              | Workload.Write { at; _ } | Workload.Read { at; _ } -> at)
            w.Workload.ops
        in
        Alcotest.(check bool) "sorted" true
          (List.sort compare times = times));
    Alcotest.test_case "concurrent workload is time-sorted" `Quick (fun () ->
        let w =
          Workload.concurrent ~params ~num_writers:3 ~num_readers:2
            ~ops_per_client:3 ()
        in
        Alcotest.(check int) "ops" 15 (Workload.total_ops w);
        let times =
          List.map
            (function
              | Workload.Write { at; _ } | Workload.Read { at; _ } -> at)
            w.Workload.ops
        in
        Alcotest.(check bool) "sorted" true (List.sort compare times = times));
    Alcotest.test_case "with_crashes and with_errors accumulate" `Quick
      (fun () ->
        let w = Workload.sequential ~params ~rounds:1 () in
        let w = Workload.with_crashes w [ (1, 5.0) ] in
        let w = Workload.with_crashes w [ (2, 9.0) ] in
        let w = Workload.with_errors w [ 3 ] in
        Alcotest.(check int) "crashes" 2 (List.length w.Workload.server_crashes);
        Alcotest.(check (list int)) "errors" [ 3 ] w.Workload.error_prone);
    Alcotest.test_case "storm workload invariants" `Quick (fun () ->
        let w =
          Workload.read_with_write_storm ~params ~writers:3
            ~writes_per_writer:2 ()
        in
        Alcotest.(check int) "one read" 1 (Workload.reads w);
        Alcotest.(check int) "writes" 7 (Workload.writes w))
  ]

let runner_tests =
  [ qtest ~count:20 "runs of all algorithms on one workload are all valid"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let w =
          Workload.concurrent ~params ~value_len:64 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:1 ()
        in
        List.for_all
          (fun algo ->
            let s = Metrics.summarize (Runner.run algo w) in
            s.Metrics.liveness && s.Metrics.atomic)
          [ Runner.Soda; Runner.Abd; Runner.Cas { gc_depth = None };
            Runner.Cas { gc_depth = Some 3 }
          ]);
    Alcotest.test_case "algorithm names" `Quick (fun () ->
        Alcotest.(check string) "soda" "soda" (Runner.algorithm_name Runner.Soda);
        Alcotest.(check string) "abd" "abd" (Runner.algorithm_name Runner.Abd);
        Alcotest.(check string) "cas" "cas"
          (Runner.algorithm_name (Runner.Cas { gc_depth = None }));
        Alcotest.(check string) "casgc" "casgc(4)"
          (Runner.algorithm_name (Runner.Cas { gc_depth = Some 4 })));
    Alcotest.test_case "soda-err is reported when e > 0" `Quick (fun () ->
        let params_err = Params.make ~n:8 ~f:2 ~e:1 () in
        let w = Workload.sequential ~params:params_err ~rounds:1 () in
        let r = Runner.run Runner.Soda w in
        Alcotest.(check string) "name" "soda-err" r.Runner.algorithm);
    Alcotest.test_case "crashed servers are reported crashed" `Quick (fun () ->
        let w = Workload.sequential ~params ~rounds:1 () in
        let w = Workload.with_crashes w [ (2, 0.0); (5, 10.0) ] in
        let r = Runner.run Runner.Soda w in
        Alcotest.(check bool) "2 crashed" true (r.Runner.crashed 2);
        Alcotest.(check bool) "5 crashed" true (r.Runner.crashed 5);
        Alcotest.(check bool) "0 alive" false (r.Runner.crashed 0))
  ]

let metrics_tests =
  [ Alcotest.test_case "stats_of" `Quick (fun () ->
        let s = Metrics.stats_of [ 1.0; 2.0; 3.0 ] in
        Alcotest.(check int) "count" 3 s.Metrics.count;
        Alcotest.(check (float 1e-9)) "mean" 2.0 s.Metrics.mean;
        Alcotest.(check (float 1e-9)) "max" 3.0 s.Metrics.max;
        Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
        let z = Metrics.stats_of [] in
        Alcotest.(check int) "empty count" 0 z.Metrics.count;
        Alcotest.(check (float 0.)) "empty mean" 0.0 z.Metrics.mean);
    Alcotest.test_case "summary counts ops" `Quick (fun () ->
        let w = Workload.sequential ~params ~rounds:3 () in
        let s = Metrics.summarize (Runner.run Runner.Soda w) in
        Alcotest.(check int) "total" 6 s.Metrics.ops_total;
        Alcotest.(check int) "complete" 6 s.Metrics.ops_complete;
        Alcotest.(check int) "writes measured" 3 s.Metrics.write_cost.count;
        Alcotest.(check int) "reads measured" 3 s.Metrics.read_cost.count);
    Alcotest.test_case "delta_w of a quiescent read is zero" `Quick (fun () ->
        let w = Workload.sequential ~params ~rounds:2 () in
        let r = Runner.run Runner.Soda w in
        List.iter
          (fun (_, dw, _) -> Alcotest.(check int) "dw" 0 dw)
          (Metrics.reads_with_delta_w r));
    Alcotest.test_case "reads_with_delta_w is empty without probes" `Quick
      (fun () ->
        let w = Workload.sequential ~params ~rounds:1 () in
        let r = Runner.run Runner.Abd w in
        Alcotest.(check int) "empty" 0
          (List.length (Metrics.reads_with_delta_w r)))
  ]

let report_tests =
  [ Alcotest.test_case "table renders aligned and padded" `Quick (fun () ->
        let buffer = Buffer.create 256 in
        let out = Format.formatter_of_buffer buffer in
        Report.table ~out ~title:"t" ~header:[ "col"; "x" ]
          [ [ "longvalue"; "1" ]; [ "s" ] ];
        Format.pp_print_flush out ();
        let rendered = Buffer.contents buffer in
        Alcotest.(check bool) "title" true
          (String.length rendered > 0
          && (let contains s sub =
                let n = String.length s and m = String.length sub in
                let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
                go 0
              in
              contains rendered "== t =="
              && contains rendered "longvalue"
              && contains rendered "col")));
    Alcotest.test_case "formatters" `Quick (fun () ->
        Alcotest.(check string) "f2" "1.50" (Report.f2 1.5);
        Alcotest.(check string) "f1" "2.3" (Report.f1 2.34);
        Alcotest.(check string) "i" "42" (Report.i 42);
        Alcotest.(check string) "ratio" "1.00/2.00 (50%)"
          (Report.ratio ~measured:1.0 ~bound:2.0))
  ]

let parallel_tests =
  [ qtest ~count:50 "parallel map equals sequential map"
      QCheck2.Gen.(
        pair (list_size (int_range 0 40) (int_range (-1000) 1000))
          (int_range 1 6))
      (fun (inputs, domains) ->
        Harness.Parallel.map ~domains (fun x -> (x * x) + 1) inputs
        = List.map (fun x -> (x * x) + 1) inputs);
    Alcotest.test_case "exceptions propagate" `Quick (fun () ->
        Alcotest.check_raises "raises" Exit (fun () ->
            ignore
              (Harness.Parallel.map ~domains:3
                 (fun x -> if x = 7 then raise Exit else x)
                 [ 1; 7; 3; 4; 5 ])));
    Alcotest.test_case "parallel simulations match sequential ones" `Quick
      (fun () ->
        (* the real use: whole simulations across domains must give the
           same results as running them one by one *)
        let run seed =
          let params = Params.make ~n:6 ~f:2 () in
          let w =
            Workload.concurrent ~params ~value_len:64 ~seed ~num_writers:2
              ~num_readers:1 ~ops_per_client:1 ()
          in
          let s = Metrics.summarize (Runner.run Runner.Soda w) in
          (s.Metrics.write_cost.mean, s.Metrics.read_cost.mean,
           s.Metrics.liveness, s.Metrics.atomic)
        in
        let seeds = List.init 12 (fun i -> i) in
        Alcotest.(check bool) "same" true
          (Harness.Parallel.map ~domains:4 run seeds = List.map run seeds));
    Alcotest.test_case "domains=1 degrades to List.map" `Quick (fun () ->
        Alcotest.(check (list int)) "same" [ 2; 3; 4 ]
          (Harness.Parallel.map ~domains:1 succ [ 1; 2; 3 ]))
  ]

let closed_loop_tests =
  [ Alcotest.test_case "all scheduled operations complete and are atomic"
      `Quick (fun () ->
        let r =
          Harness.Closed_loop.run_soda ~params ~value_len:128 ~seed:3
            ~num_writers:2 ~num_readers:2 ~ops_per_client:5 ()
        in
        let h = r.Harness.Closed_loop.history in
        Alcotest.(check int) "op count" 20 (History.size h);
        Alcotest.(check bool) "complete" true (History.all_complete h);
        Alcotest.(check bool) "atomic" true
          (Protocol.Atomicity.check_tagged
             ~initial_value:r.Harness.Closed_loop.initial_value
             (History.records h)
          = Ok ()));
    Alcotest.test_case "throughput responds to think time" `Quick (fun () ->
        let run think_time =
          Harness.Closed_loop.ops_per_time
            (Harness.Closed_loop.run_soda ~params ~value_len:128 ~seed:4
               ~think_time ~num_writers:2 ~num_readers:2 ~ops_per_client:8 ())
        in
        Alcotest.(check bool) "lower think time, higher throughput" true
          (run 0.5 > run 20.0));
    qtest ~count:15 "closed-loop runs are deterministic"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let fingerprint () =
          let r =
            Harness.Closed_loop.run_soda ~params ~value_len:64 ~seed
              ~num_writers:2 ~num_readers:1 ~ops_per_client:3 ()
          in
          ( r.Harness.Closed_loop.sim_duration,
            r.Harness.Closed_loop.messages,
            List.map
              (fun o -> (o.History.op, o.History.tag, o.History.responded_at))
              (History.records r.Harness.Closed_loop.history) )
        in
        fingerprint () = fingerprint ())
  ]

let () =
  Alcotest.run "harness"
    [ ("workload", workload_tests);
      ("runner", runner_tests);
      ("metrics", metrics_tests);
      ("report", report_tests);
      ("parallel", parallel_tests);
      ("closed-loop", closed_loop_tests)
    ]

(* Tests of the literal IO-Automata rendering of MD-VALUE (Figs. 1-2):
   Theorem 3.1 (validity, uniformity) under crashes interleaved at step
   granularity, and Theorem 3.2 (no state bloat after delivery). *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module Tag = Protocol.Tag
module Mds = Erasure.Mds
module Fragment = Erasure.Fragment
module Md_ioa = Soda.Md_ioa

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let make ?(n = 7) ?(f = 3) ?(seed = 1) ?(step = 0.5) () =
  let params = Params.make ~n ~f () in
  let engine = Engine.create ~seed ~delay:(Delay.uniform ~lo:0.3 ~hi:2.0) () in
  let d = Md_ioa.deploy ~engine ~params ~step () in
  (params, engine, d)

let ioa_tests =
  [ Alcotest.test_case
      "crash-free dispersal: every server delivers its own coded element \
       exactly once, sender gets the ack"
      `Quick (fun () ->
        let params, engine, d = make () in
        let tag = Tag.make ~z:1 ~w:100 in
        let value = Bytes.of_string "a payload for the IOA rendering" in
        Md_ioa.send d ~at:0.0 ~tag ~value;
        Engine.run engine;
        let deliveries = Md_ioa.deliveries d in
        Alcotest.(check int) "n deliveries" 7 (List.length deliveries);
        let expected =
          Mds.encode (Mds.rs_vandermonde ~n:7 ~k:(Params.k_soda params)) value
        in
        List.iter
          (fun { Md_ioa.server; tag = t; fragment } ->
            Alcotest.(check bool) "tag" true (Tag.equal t tag);
            Alcotest.(check bool)
              (Printf.sprintf "server %d coded element" server)
              true
              (Fragment.equal fragment expected.(server)))
          deliveries;
        let distinct =
          List.sort_uniq compare
            (List.map (fun d -> d.Md_ioa.server) deliveries)
        in
        Alcotest.(check int) "each exactly once" 7 (List.length distinct);
        Alcotest.(check int) "acked" 1 (List.length (Md_ioa.acked d)));
    qtest ~count:150
      "Thm 3.1 uniformity: sender + f servers crash at arbitrary steps"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 0.0 12.0 >>= fun sender_crash ->
        triple (float_range 0.0 20.0) (float_range 0.0 20.0)
          (float_range 0.0 20.0)
        >>= fun (t1, t2, t3) ->
        shuffle_a (Array.init 7 (fun i -> i)) >|= fun perm ->
        (seed, sender_crash, [ (perm.(0), t1); (perm.(1), t2); (perm.(2), t3) ]))
      (fun (seed, sender_crash, crashes) ->
        let _, engine, d = make ~seed () in
        Md_ioa.send d ~at:0.0 ~tag:(Tag.make ~z:1 ~w:100)
          ~value:(Bytes.make 40 'u');
        Md_ioa.crash_sender d ~at:sender_crash;
        List.iter
          (fun (index, at) -> Md_ioa.crash_server d ~index ~at)
          crashes;
        Engine.run engine;
        let crashed index =
          List.exists (fun (i, _) -> i = index) crashes
        in
        let delivered index =
          List.exists
            (fun dv -> dv.Md_ioa.server = index)
            (Md_ioa.deliveries d)
        in
        let live = List.filter (fun i -> not (crashed i)) (List.init 7 Fun.id) in
        (* uniformity: all live servers deliver, or none does *)
        List.for_all delivered live || List.for_all (fun i -> not (delivered i)) live);
    qtest ~count:150 "Thm 3.1 validity holds under every crash pattern"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 0.0 15.0 >|= fun crash_at -> (seed, crash_at))
      (fun (seed, crash_at) ->
        let params, engine, d = make ~seed () in
        let value = Bytes.make 64 'w' in
        let tag = Tag.make ~z:2 ~w:55 in
        Md_ioa.send d ~at:0.0 ~tag ~value;
        Md_ioa.crash_sender d ~at:crash_at;
        Engine.run engine;
        let expected =
          Mds.encode (Mds.rs_vandermonde ~n:7 ~k:(Params.k_soda params)) value
        in
        List.for_all
          (fun { Md_ioa.server; tag = t; fragment } ->
            Tag.equal t tag && Fragment.equal fragment expected.(server))
          (Md_ioa.deliveries d));
    qtest ~count:100
      "Thm 3.2: after quiescence no automaton retains value bytes"
      QCheck2.Gen.(
        int_range 0 100_000 >>= fun seed ->
        float_range 0.0 15.0 >|= fun crash_at -> (seed, crash_at))
      (fun (seed, crash_at) ->
        let _, engine, d = make ~seed () in
        Md_ioa.send d ~at:0.0 ~tag:(Tag.make ~z:1 ~w:9)
          ~value:(Bytes.make 100 'z');
        Md_ioa.send d ~at:50.0 ~tag:(Tag.make ~z:2 ~w:9)
          ~value:(Bytes.make 100 'y');
        Md_ioa.crash_server d ~index:(seed mod 7) ~at:crash_at;
        Engine.run engine;
        (* the theorem allows crashed automata to be in any state; all
           others must have dropped every payload *)
        Md_ioa.sender_retained_payloads d = 0
        && List.for_all
             (fun index ->
               index = seed mod 7
               || Md_ioa.server_retained_payloads d ~index = 0)
             (List.init 7 Fun.id));
    Alcotest.test_case
      "sender crash mid-send_buff: prefix of D gets the full value, \
       uniformity still holds"
      `Quick (fun () ->
        (* step = 2.0 and crash at 3.0: exactly two send actions happen *)
        let params = Params.make ~n:7 ~f:3 () in
        let engine = Engine.create ~seed:3 ~delay:(Delay.constant 1.0) () in
        let d = Md_ioa.deploy ~engine ~params ~step:2.0 () in
        Md_ioa.send d ~at:0.0 ~tag:(Tag.make ~z:1 ~w:1)
          ~value:(Bytes.make 30 'p');
        Md_ioa.crash_sender d ~at:3.0;
        Engine.run engine;
        (* servers 0 and 1 of D received directly; everyone must still
           deliver via relays *)
        Alcotest.(check int) "all deliver" 7
          (List.length (Md_ioa.deliveries d));
        Alcotest.(check int) "no ack from the dead sender" 0
          (List.length (Md_ioa.acked d)))
  ]

let () = Alcotest.run "md-ioa" [ ("figs-1-2", ioa_tests) ]

(* Tests for the discrete-event simulator: RNG, event queue, delay
   models, and engine semantics (reliable delivery, crash behaviour,
   determinism). *)

module Rng = Simnet.Rng
module Delay = Simnet.Delay
module Event_queue = Simnet.Event_queue
module Engine = Simnet.Engine

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng *)

let rng_tests =
  [ qtest "same seed, same stream" QCheck2.Gen.int (fun seed ->
        let a = Rng.create seed and b = Rng.create seed in
        List.init 50 (fun _ -> Rng.int64 a)
        = List.init 50 (fun _ -> Rng.int64 b));
    qtest "int respects bound" QCheck2.Gen.(pair int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        List.init 100 (fun _ -> Rng.int rng bound)
        |> List.for_all (fun x -> x >= 0 && x < bound));
    qtest "int_in respects range"
      QCheck2.Gen.(triple int (int_range (-50) 50) (int_range 0 100))
      (fun (seed, lo, span) ->
        let hi = lo + span in
        let rng = Rng.create seed in
        List.init 100 (fun _ -> Rng.int_in rng lo hi)
        |> List.for_all (fun x -> x >= lo && x <= hi));
    qtest "float respects bound" QCheck2.Gen.int (fun seed ->
        let rng = Rng.create seed in
        List.init 100 (fun _ -> Rng.float rng 3.5)
        |> List.for_all (fun x -> x >= 0. && x < 3.5));
    qtest "exponential is positive" QCheck2.Gen.int (fun seed ->
        let rng = Rng.create seed in
        List.init 100 (fun _ -> Rng.exponential rng ~mean:2.0)
        |> List.for_all (fun x -> x >= 0.));
    qtest "split streams differ from parent continuation" QCheck2.Gen.int
      (fun seed ->
        let parent = Rng.create seed in
        let child = Rng.split parent in
        let a = List.init 20 (fun _ -> Rng.int64 parent) in
        let b = List.init 20 (fun _ -> Rng.int64 child) in
        a <> b);
    qtest "shuffle permutes" QCheck2.Gen.int (fun seed ->
        let rng = Rng.create seed in
        let a = Array.init 30 (fun i -> i) in
        Rng.shuffle_in_place rng a;
        List.sort compare (Array.to_list a) = List.init 30 (fun i -> i));
    Alcotest.test_case "invalid bounds rejected" `Quick (fun () ->
        let rng = Rng.create 1 in
        Alcotest.check_raises "zero bound"
          (Invalid_argument "Rng.int: non-positive bound") (fun () ->
            ignore (Rng.int rng 0));
        Alcotest.check_raises "empty range"
          (Invalid_argument "Rng.int_in: empty range") (fun () ->
            ignore (Rng.int_in rng 3 2));
        Alcotest.check_raises "empty pick"
          (Invalid_argument "Rng.pick: empty array") (fun () ->
            ignore (Rng.pick rng [||])));
    (* a crude uniformity check: mean of many draws near bound/2 *)
    Alcotest.test_case "rough uniformity" `Quick (fun () ->
        let rng = Rng.create 99 in
        let n = 20_000 in
        let sum = ref 0 in
        for _ = 1 to n do
          sum := !sum + Rng.int rng 100
        done;
        let mean = float_of_int !sum /. float_of_int n in
        Alcotest.(check bool)
          (Printf.sprintf "mean %.2f within [47, 52]" mean)
          true
          (mean > 47. && mean < 52.))
  ]

(* ------------------------------------------------------------------ *)
(* Event queue *)

let queue_tests =
  [ qtest "pops in time order"
      QCheck2.Gen.(list_size (int_range 0 200) (float_bound_inclusive 1000.))
      (fun times ->
        let q = Event_queue.create () in
        List.iteri (fun i time -> Event_queue.push q ~time i) times;
        let rec drain acc =
          match Event_queue.pop q with
          | None -> List.rev acc
          | Some (time, _) -> drain (time :: acc)
        in
        let popped = drain [] in
        popped = List.sort compare times);
    qtest "ties break by insertion order"
      QCheck2.Gen.(int_range 1 100)
      (fun count ->
        let q = Event_queue.create () in
        for i = 0 to count - 1 do
          Event_queue.push q ~time:1.0 i
        done;
        let rec drain acc =
          match Event_queue.pop q with
          | None -> List.rev acc
          | Some (_, payload) -> drain (payload :: acc)
        in
        drain [] = List.init count (fun i -> i));
    Alcotest.test_case "size / peek / clear" `Quick (fun () ->
        let q = Event_queue.create () in
        Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
        Event_queue.push q ~time:5.0 "b";
        Event_queue.push q ~time:2.0 "a";
        Alcotest.(check int) "size" 2 (Event_queue.size q);
        Alcotest.(check (option (float 0.))) "peek" (Some 2.0)
          (Event_queue.peek_time q);
        Event_queue.clear q;
        Alcotest.(check bool) "cleared" true (Event_queue.is_empty q));
    Alcotest.test_case "NaN rejected" `Quick (fun () ->
        let q = Event_queue.create () in
        Alcotest.check_raises "nan"
          (Invalid_argument "Event_queue.push: NaN time") (fun () ->
            Event_queue.push q ~time:Float.nan ()));
    (* Model-based test: random interleavings of every queue operation
       (both push paths, pops, clears) against a sorted-list reference.
       The model keeps (time, seq, tag, payload) sorted stably by
       (time, seq) — exactly the documented delivery order — and every
       observation the queue offers (size, next_time, next_tag,
       unsafe_times.(0), popped payload) is checked at each step. *)
    (let op_gen =
       QCheck2.Gen.(
         frequency
           [ ( 3,
               map2
                 (fun t tag -> `Push (t, tag))
                 (float_bound_inclusive 100.) (int_range 0 1000) );
             ( 2,
               map2
                 (fun t tag -> `Push_inbox (t, tag))
                 (float_bound_inclusive 100.) (int_range 0 1000) );
             (4, pure `Pop);
             (1, pure `Clear)
           ])
     in
     qtest ~count:300 "model: random op interleavings match a sorted list"
       QCheck2.Gen.(list_size (int_range 0 200) op_gen)
       (fun ops ->
         let q = Event_queue.create () in
         (* reference: (time, seq, tag, payload), sorted by (time, seq) *)
         let model = ref [] in
         let seq = ref 0 in
         let insert (t, s, tag, p) =
           (* s is the largest seq so far, so a time tie sorts after the
              existing entries: insert after every t' <= t *)
           let rec ins = function
             | [] -> [ (t, s, tag, p) ]
             | ((t', _, _, _) as hd) :: tl ->
               if t' <= t then hd :: ins tl else (t, s, tag, p) :: hd :: tl
           in
           model := ins !model
         in
         let ok = ref true in
         let check b = if not b then ok := false in
         List.iter
           (fun op ->
             (match op with
             | `Push (t, tag) ->
               Event_queue.push_tagged q ~time:t ~tag !seq;
               insert (t, !seq, tag, !seq);
               incr seq
             | `Push_inbox (t, tag) ->
               (Event_queue.inbox q).(0) <- t;
               Event_queue.push_inbox q ~tag !seq;
               insert (t, !seq, tag, !seq);
               incr seq
             | `Pop -> (
               match !model with
               | [] ->
                 check (Event_queue.is_empty q);
                 check (Event_queue.pop q = None)
               | (t, _, tag, p) :: tl ->
                 check (Event_queue.next_time q = t);
                 check (Event_queue.next_tag q = tag);
                 check ((Event_queue.unsafe_times q).(0) = t);
                 check (Event_queue.pop_exn q = p);
                 model := tl)
             | `Clear ->
               Event_queue.clear q;
               model := []);
             check (Event_queue.size q = List.length !model);
             check (Event_queue.is_empty q = (!model = [])))
           ops;
         (* drain what's left: full delivery order must match *)
         List.iter
           (fun (t, _, tag, p) ->
             check (Event_queue.next_time q = t);
             check (Event_queue.next_tag q = tag);
             check (Event_queue.pop_exn q = p))
           !model;
         check (Event_queue.is_empty q);
         !ok));
    (* drain_cohort model: times drawn from a small discrete set force
       large equal-time cohorts; a drain must remove exactly the
       min-time prefix of the sorted reference, FIFO within the tie,
       and leave the heap delivering the rest in order. *)
    (let op_gen =
       QCheck2.Gen.(
         frequency
           [ ( 5,
               map2
                 (fun t tag -> `Push (t, tag))
                 (int_range 0 8) (int_range 0 1000) );
             (2, pure `Drain);
             (1, pure `Pop)
           ])
     in
     qtest ~count:300 "model: drain_cohort = min-time cohort in FIFO order"
       QCheck2.Gen.(list_size (int_range 0 150) op_gen)
       (fun ops ->
         let q = Event_queue.create () in
         let model = ref [] in
         let seq = ref 0 in
         let insert (t, s, tag, p) =
           let rec ins = function
             | [] -> [ (t, s, tag, p) ]
             | ((t', _, _, _) as hd) :: tl ->
               if t' <= t then hd :: ins tl else (t, s, tag, p) :: hd :: tl
           in
           model := ins !model
         in
         let ok = ref true in
         let check b = if not b then ok := false in
         List.iter
           (fun op ->
             (match op with
             | `Push (ti, tag) ->
               let t = float_of_int ti in
               Event_queue.push_tagged q ~time:t ~tag !seq;
               insert (t, !seq, tag, !seq);
               incr seq
             | `Pop -> (
               match !model with
               | [] -> check (Event_queue.pop q = None)
               | (_, _, _, p) :: tl ->
                 check (Event_queue.pop_exn q = p);
                 model := tl)
             | `Drain -> (
               match !model with
               | [] -> check (Event_queue.is_empty q)
               | (t0, _, _, _) :: _ ->
                 let rec split acc = function
                   | (t, _, tag, p) :: tl when t = t0 ->
                     split ((tag, p) :: acc) tl
                   | rest -> (List.rev acc, rest)
                 in
                 let cohort, rest = split [] !model in
                 model := rest;
                 let c = Event_queue.drain_cohort q in
                 check (c = List.length cohort);
                 List.iteri
                   (fun i (tag, p) ->
                     check (Event_queue.cohort_tag q i = tag);
                     check (Event_queue.cohort_payload q i = p))
                   cohort));
             check (Event_queue.size q = List.length !model))
           ops;
         List.iter
           (fun (_, _, _, p) -> check (Event_queue.pop_exn q = p))
           !model;
         check (Event_queue.is_empty q);
         !ok));
    Alcotest.test_case "queue survives clear and reuse at capacity" `Quick
      (fun () ->
        let q = Event_queue.create () in
        for round = 1 to 3 do
          for i = 0 to 99 do
            Event_queue.push_tagged q
              ~time:(float_of_int ((i * 7919) mod 100))
              ~tag:i i
          done;
          Alcotest.(check int) "filled" 100 (Event_queue.size q);
          if round < 3 then Event_queue.clear q
        done;
        let last = ref neg_infinity in
        while not (Event_queue.is_empty q) do
          let t = Event_queue.next_time q in
          Alcotest.(check bool) "monotone" true (t >= !last);
          last := t;
          ignore (Event_queue.pop_exn q : int)
        done)
  ]

(* ------------------------------------------------------------------ *)
(* Delay models *)

let delay_tests =
  [ qtest "draws respect the declared upper bound"
      QCheck2.Gen.(triple int (float_range 0.1 5.0) (float_range 0.0 5.0))
      (fun (seed, hi, lo_frac) ->
        let lo = lo_frac *. hi /. 5.0 in
        let rng = Rng.create seed in
        let models =
          [ Delay.constant hi;
            Delay.uniform ~lo ~hi;
            Delay.exponential ~mean:(hi /. 2.) ~cap:hi
          ]
        in
        List.for_all
          (fun m ->
            let bound = Option.get (Delay.upper_bound m) in
            List.init 50 (fun _ -> Delay.draw m rng ~src:0 ~dst:1)
            |> List.for_all (fun d -> d > 0. && d <= bound))
          models);
    Alcotest.test_case "per-link dispatches on endpoints" `Quick (fun () ->
        let m =
          Delay.per_link (fun ~src ~dst:_ ->
              if src = 0 then Delay.constant 9.0 else Delay.constant 1.0)
        in
        let rng = Rng.create 5 in
        Alcotest.(check (float 1e-9)) "slow" 9.0 (Delay.draw m rng ~src:0 ~dst:3);
        Alcotest.(check (float 1e-9)) "fast" 1.0 (Delay.draw m rng ~src:2 ~dst:3);
        Alcotest.(check (option (float 0.))) "no bound" None (Delay.upper_bound m));
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        let invalid f =
          match f () with exception Invalid_argument _ -> true | _ -> false
        in
        Alcotest.(check bool) "negative constant" true
          (invalid (fun () -> Delay.constant (-1.)));
        Alcotest.(check bool) "reversed range" true
          (invalid (fun () -> Delay.uniform ~lo:2. ~hi:1.));
        Alcotest.(check bool) "cap below mean" true
          (invalid (fun () -> Delay.exponential ~mean:2. ~cap:1.)))
  ]

(* ------------------------------------------------------------------ *)
(* Engine *)

(* a tiny ping-pong protocol: processes bounce a counter until it
   reaches a limit *)
type ping = Ping of int

let engine_tests =
  [ Alcotest.test_case "messages are delivered, replies flow" `Quick (fun () ->
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let a = Engine.reserve engine ~name:"a" in
        let b = Engine.reserve engine ~name:"b" in
        let log = ref [] in
        let handler ctx ~src (Ping i) =
          log := (Engine.self ctx, i) :: !log;
          if i < 5 then Engine.send ctx ~dst:src (Ping (i + 1))
        in
        Engine.set_handler engine a handler;
        Engine.set_handler engine b handler;
        Engine.inject engine ~at:0.0 a (fun ctx ->
            Engine.send ctx ~dst:b (Ping 0));
        Engine.run engine;
        Alcotest.(check int) "six deliveries" 6 (List.length !log);
        Alcotest.(check (float 1e-9)) "clock advanced" 6.0 (Engine.now engine);
        Alcotest.(check int) "sent counter" 6 (Engine.messages_sent engine);
        Alcotest.(check int) "delivered counter" 6
          (Engine.messages_delivered engine);
        Alcotest.(check int) "nothing dropped" 0
          (Engine.messages_dropped engine));
    Alcotest.test_case "crashed destination drops silently" `Quick (fun () ->
        let engine =
          Engine.create ~seed:1 ~trace:true ~delay:(Delay.constant 1.0) ()
        in
        let a = Engine.reserve engine ~name:"a" in
        let b = Engine.reserve engine ~name:"b" in
        let received = ref 0 in
        Engine.set_handler engine a (fun _ ~src:_ (Ping _) -> incr received);
        Engine.set_handler engine b (fun _ ~src:_ (Ping _) -> incr received);
        Engine.crash_at engine b 0.5;
        Engine.inject engine ~at:0.0 a (fun ctx ->
            Engine.send ctx ~dst:b (Ping 1));
        Engine.run engine;
        Alcotest.(check int) "not received" 0 !received;
        let dropped =
          List.exists
            (function Engine.Dropped _ -> true | _ -> false)
            (Engine.trace_events engine)
        in
        Alcotest.(check bool) "drop traced" true dropped;
        Alcotest.(check int) "drop counted" 1
          (Engine.messages_dropped engine));
    Alcotest.test_case "crashed process stops sending and timers die" `Quick
      (fun () ->
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let a = Engine.reserve engine ~name:"a" in
        let b = Engine.reserve engine ~name:"b" in
        let received = ref 0 in
        Engine.set_handler engine b (fun _ ~src:_ (Ping _) -> incr received);
        Engine.set_handler engine a (fun _ ~src:_ (Ping _) -> ());
        (* a schedules a send for t=2 but crashes at t=1 *)
        Engine.inject engine ~at:0.0 a (fun ctx ->
            Engine.schedule_local ctx ~delay:2.0 (fun () ->
                Engine.send ctx ~dst:b (Ping 7)));
        Engine.crash_at engine a 1.0;
        Engine.run engine;
        Alcotest.(check int) "no message" 0 !received;
        Alcotest.(check bool) "a crashed" true (Engine.is_crashed engine a));
    Alcotest.test_case "sender may crash after send; delivery persists" `Quick
      (fun () ->
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 5.0) () in
        let a = Engine.reserve engine ~name:"a" in
        let b = Engine.reserve engine ~name:"b" in
        let received = ref 0 in
        Engine.set_handler engine a (fun _ ~src:_ (Ping _) -> ());
        Engine.set_handler engine b (fun _ ~src:_ (Ping _) -> incr received);
        Engine.inject engine ~at:0.0 a (fun ctx ->
            Engine.send ctx ~dst:b (Ping 1));
        Engine.crash_at engine a 1.0;
        (* crash happens at t=1, delivery at t=5 *)
        Engine.run engine;
        Alcotest.(check int) "delivered anyway" 1 !received);
    qtest ~count:50 "determinism: same seed, same trace" QCheck2.Gen.int
      (fun seed ->
        let run () =
          let engine =
            Engine.create ~seed ~trace:true
              ~delay:(Delay.uniform ~lo:0.1 ~hi:3.0) ()
          in
          let n = 4 in
          let pids =
            Array.init n (fun i ->
                Engine.reserve engine ~name:(string_of_int i))
          in
          Array.iter
            (fun pid ->
              Engine.set_handler engine pid (fun ctx ~src:_ (Ping i) ->
                  if i < 30 then begin
                    let dst =
                      pids.(Simnet.Rng.int (Engine.rng_ctx ctx) n)
                    in
                    Engine.send ctx ~dst (Ping (i + 1))
                  end))
            pids;
          Engine.inject engine ~at:0.0 pids.(0) (fun ctx ->
              Engine.send ctx ~dst:pids.(1) (Ping 0));
          Engine.run engine;
          (Engine.trace_events engine, Engine.now engine)
        in
        run () = run ());
    Alcotest.test_case "run ~until leaves later events queued" `Quick
      (fun () ->
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 10.0) () in
        let a = Engine.reserve engine ~name:"a" in
        let b = Engine.reserve engine ~name:"b" in
        let received = ref 0 in
        Engine.set_handler engine a (fun _ ~src:_ (Ping _) -> ());
        Engine.set_handler engine b (fun _ ~src:_ (Ping _) -> incr received);
        Engine.inject engine ~at:0.0 a (fun ctx ->
            Engine.send ctx ~dst:b (Ping 1));
        Engine.run ~until:5.0 engine;
        Alcotest.(check int) "not yet" 0 !received;
        Alcotest.(check int) "still queued" 1 (Engine.pending_events engine);
        Alcotest.(check (float 1e-9)) "clock at horizon" 5.0
          (Engine.now engine);
        Engine.run engine;
        Alcotest.(check int) "eventually" 1 !received);
    Alcotest.test_case "run ~until advances the clock past a dry queue"
      `Quick (fun () ->
        (* the queue drains at t=1, but the horizon is 5: the engine
           simulated the whole interval, so the clock must say so *)
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let a = Engine.reserve engine ~name:"a" in
        Engine.set_handler engine a (fun _ ~src:_ (Ping _) -> ());
        Engine.inject engine ~at:1.0 a (fun _ -> ());
        Engine.run ~until:5.0 engine;
        Alcotest.(check int) "drained" 0 (Engine.pending_events engine);
        Alcotest.(check (float 1e-9)) "clock at horizon" 5.0
          (Engine.now engine);
        (* an already-empty queue still advances, and never backwards *)
        Engine.run ~until:7.5 engine;
        Alcotest.(check (float 1e-9)) "advanced again" 7.5 (Engine.now engine);
        Engine.run ~until:2.0 engine;
        Alcotest.(check (float 1e-9)) "never backwards" 7.5
          (Engine.now engine));
    Alcotest.test_case "event limit guard" `Quick (fun () ->
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let a = Engine.reserve engine ~name:"a" in
        (* a sends to itself forever *)
        Engine.set_handler engine a (fun ctx ~src:_ (Ping i) ->
            Engine.send ctx ~dst:a (Ping (i + 1)));
        Engine.inject engine ~at:0.0 a (fun ctx ->
            Engine.send ctx ~dst:a (Ping 0));
        Alcotest.check_raises "limit" (Engine.Event_limit_exceeded 100)
          (fun () -> Engine.run ~max_events:100 engine));
    Alcotest.test_case "second handler installation rejected" `Quick
      (fun () ->
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let a = Engine.reserve engine ~name:"a" in
        Engine.set_handler engine a (fun _ ~src:_ (Ping _) -> ());
        Alcotest.check_raises "double"
          (Invalid_argument "Engine.set_handler: handler already installed")
          (fun () -> Engine.set_handler engine a (fun _ ~src:_ _ -> ())))
  ]

(* ------------------------------------------------------------------ *)
(* Trace checking: the simulator is itself validated against the model *)

let trace_tests =
  [ qtest ~count:40 "random protocol traces satisfy the channel axioms"
      QCheck2.Gen.int
      (fun seed ->
        (* run a real SODA execution with traces on, crashes included *)
        let params = Protocol.Params.make ~n:6 ~f:2 () in
        let engine =
          Engine.create ~seed ~trace:true
            ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 32 'i') ~num_writers:1 ~num_readers:1
            ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 32 'a');
        Soda.Deployment.read d ~reader:0 ~at:40.0 ();
        Soda.Deployment.crash_server d ~coordinate:1 ~at:20.0;
        Soda.Deployment.crash_server d ~coordinate:4 ~at:60.0;
        Engine.run engine;
        Simnet.Trace_check.check (Engine.trace_events engine) = Ok ());
    Alcotest.test_case "crash-free quiescent traces deliver everything"
      `Quick (fun () ->
        let engine =
          Engine.create ~seed:2 ~trace:true ~delay:(Delay.constant 1.0) ()
        in
        let a = Engine.reserve engine ~name:"a" in
        let b = Engine.reserve engine ~name:"b" in
        let handler ctx ~src (Ping i) =
          if i < 10 then Engine.send ctx ~dst:src (Ping (i + 1))
        in
        Engine.set_handler engine a handler;
        Engine.set_handler engine b handler;
        Engine.inject engine ~at:0.0 a (fun ctx ->
            Engine.send ctx ~dst:b (Ping 0));
        Engine.run engine;
        let events = Engine.trace_events engine in
        Alcotest.(check bool) "valid" true
          (Simnet.Trace_check.check events = Ok ());
        Alcotest.(check (float 1e-9)) "all delivered" 1.0
          (Simnet.Trace_check.delivered_ratio events));
    Alcotest.test_case "forged traces are rejected" `Quick (fun () ->
        let bad what events =
          Alcotest.(check bool) what true
            (Result.is_error (Simnet.Trace_check.check events))
        in
        bad "delivery without send"
          [ Engine.Delivered { time = 1.0; src = 0; dst = 1 } ];
        bad "clock reversal"
          [ Engine.Sent { time = 2.0; src = 0; dst = 1 };
            Engine.Delivered { time = 1.0; src = 0; dst = 1 }
          ];
        bad "double delivery of one send"
          [ Engine.Sent { time = 0.0; src = 0; dst = 1 };
            Engine.Delivered { time = 1.0; src = 0; dst = 1 };
            Engine.Delivered { time = 2.0; src = 0; dst = 1 }
          ];
        bad "delivery to crashed process"
          [ Engine.Sent { time = 0.0; src = 0; dst = 1 };
            Engine.Crashed { time = 0.5; pid = 1 };
            Engine.Delivered { time = 1.0; src = 0; dst = 1 }
          ];
        bad "restore of a live process"
          [ Engine.Restored { time = 0.0; pid = 3 } ];
        bad "double crash"
          [ Engine.Crashed { time = 0.0; pid = 3 };
            Engine.Crashed { time = 1.0; pid = 3 }
          ]);
    Alcotest.test_case "crash-restore-deliver is accepted" `Quick (fun () ->
        let events =
          [ Engine.Crashed { time = 0.0; pid = 1 };
            Engine.Restored { time = 1.0; pid = 1 };
            Engine.Sent { time = 2.0; src = 0; dst = 1 };
            Engine.Delivered { time = 3.0; src = 0; dst = 1 }
          ]
        in
        Alcotest.(check bool) "valid" true
          (Simnet.Trace_check.check events = Ok ()))
  ]

let () =
  Alcotest.run "simnet"
    [ ("rng", rng_tests);
      ("event-queue", queue_tests);
      ("delay", delay_tests);
      ("engine", engine_tests);
      ("trace-check", trace_tests)
    ]

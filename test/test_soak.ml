(* Soak tests: larger systems, longer executions, combined fault types.
   These run whole-system scenarios closer to the paper's motivating
   deployments (tens of servers) than the per-property unit tests. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Atomicity = Protocol.Atomicity
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics

let accept (r : Runner.result) =
  History.all_complete r.Runner.history
  && Atomicity.check_tagged ~initial_value:r.Runner.initial_value
       (History.records r.Runner.history)
     = Ok ()

let soak_tests =
  [ Alcotest.test_case "n=25 at fmax with staggered crashes" `Quick (fun () ->
        let params = Params.make ~n:25 ~f:12 () in
        let w =
          Workload.concurrent ~params ~value_len:256 ~seed:1 ~num_writers:4
            ~num_readers:4 ~ops_per_client:3
            ~delay:(Delay.exponential ~mean:1.0 ~cap:10.0) ()
        in
        let crashes = List.init 12 (fun i -> (2 * i, float_of_int (i * 80))) in
        let r = Runner.run Runner.Soda (Workload.with_crashes w crashes) in
        Alcotest.(check bool) "accepted" true (accept r));
    Alcotest.test_case "n=31 SODAerr: crashes + corrupting disks together"
      `Quick (fun () ->
        let params = Params.make ~n:31 ~f:10 ~e:2 () in
        let w =
          Workload.concurrent ~params ~value_len:256 ~seed:2 ~num_writers:3
            ~num_readers:3 ~ops_per_client:2 ()
        in
        let w = Workload.with_errors w [ 5; 17 ] in
        let crashes = List.init 10 (fun i -> (3 * i, float_of_int (i * 60))) in
        let r = Runner.run Runner.Soda (Workload.with_crashes w crashes) in
        Alcotest.(check bool) "accepted" true (accept r);
        Alcotest.(check string) "ran as soda-err" "soda-err"
          r.Runner.algorithm);
    Alcotest.test_case "200-operation run with crash/repair cycles" `Quick
      (fun () ->
        let params = Params.make ~n:9 ~f:3 () in
        let initial_value = Workload.value ~len:128 ~seed:3 ~index:999 in
        let engine =
          Engine.create ~seed:3 ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:4
            ~num_readers:4 ()
        in
        (* 100 writes + 100 reads across 8 clients, with three full
           crash-then-repair cycles sprinkled through the run *)
        for i = 0 to 99 do
          let t = float_of_int i *. 45.0 in
          Soda.Deployment.write d ~writer:(i mod 4) ~at:t
            (Workload.value ~len:128 ~seed:3 ~index:i);
          Soda.Deployment.read d ~reader:(i mod 4) ~at:(t +. 20.0) ()
        done;
        List.iteri
          (fun i c ->
            let t0 = 300.0 +. (float_of_int i *. 1100.0) in
            Soda.Deployment.crash_server d ~coordinate:c ~at:t0;
            ignore (Soda.Deployment.repair_server d ~coordinate:c ~at:(t0 +. 400.0)))
          [ 1; 4; 7 ];
        Engine.run engine;
        let history = Soda.Deployment.history d in
        Alcotest.(check int) "200 ops" 200 (History.size history);
        Alcotest.(check bool) "all complete" true (History.all_complete history);
        Alcotest.(check bool) "atomic" true
          (Atomicity.check_tagged ~initial_value (History.records history)
          = Ok ()));
    Alcotest.test_case "all algorithms agree on a 15-server workload" `Quick
      (fun () ->
        let params = Params.make ~n:15 ~f:7 () in
        let w =
          Workload.concurrent ~params ~value_len:512 ~seed:4 ~num_writers:3
            ~num_readers:3 ~ops_per_client:3 ()
        in
        List.iter
          (fun algo ->
            let s = Metrics.summarize (Runner.run algo w) in
            Alcotest.(check bool)
              (Runner.algorithm_name algo ^ " accepted")
              true
              (s.Metrics.liveness && s.Metrics.atomic))
          [ Runner.Soda; Runner.Abd; Runner.Cas { gc_depth = None };
            Runner.Cas { gc_depth = Some 3 }
          ]);
    Alcotest.test_case "message volume stays within the O(n^2) envelope"
      `Quick (fun () ->
        (* regression guard against accidental message blowups: a write
           disperses O(f^2) value-bearing messages plus O(n) acks, a read
           registers via MD (O(n)) and triggers O(n) relays, each
           announced via MD (O(n) each, so O(n^2) per read) *)
        let params = Params.make ~n:12 ~f:5 () in
        let w = Workload.sequential ~params ~value_len:64 ~seed:5 ~rounds:4 () in
        let r = Runner.run Runner.Soda w in
        let n = 12 in
        let per_read = 4 * n * n in
        let per_write = 4 * n * n in
        let budget = 4 * (per_read + per_write) in
        Alcotest.(check bool)
          (Printf.sprintf "%d messages <= %d" r.Runner.messages_sent budget)
          true
          (r.Runner.messages_sent <= budget))
  ]

let large_n_tests =
  [ Alcotest.test_case "n=300 (GF(2^16) codec) write/read round-trip" `Quick
      (fun () ->
        (* beyond the 255-fragment limit of byte-oriented RS: the config
           transparently switches to the GF(2^16) codec *)
        let params = Params.make ~n:300 ~f:10 () in
        let engine =
          Engine.create ~seed:6 ~delay:(Delay.uniform ~lo:0.5 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 1024 '0') ~num_writers:1 ~num_readers:1
            ()
        in
        let config = Soda.Deployment.config d in
        Alcotest.(check string) "rs16 codec" "rs16[300,290]"
          (Erasure.Mds.name config.Soda.Config.code);
        let value = Workload.value ~len:1024 ~seed:6 ~index:0 in
        let result = ref None in
        Soda.Deployment.write d ~writer:0 ~at:0.0 value;
        Soda.Deployment.read d ~reader:0 ~at:200.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        (match !result with
        | Some v -> Alcotest.(check bool) "value" true (Bytes.equal v value)
        | None -> Alcotest.fail "read did not complete");
        let storage =
          Protocol.Cost.max_total_storage (Soda.Deployment.cost d)
        in
        let expected =
          float_of_int
            (300
            * Erasure.Mds.fragment_size config.Soda.Config.code
                ~value_len:1024)
          /. 1024.0
        in
        Alcotest.(check (float 1e-9)) "storage matches n/(n-f) + framing"
          expected storage);
    Alcotest.test_case
      "n=300 SODAerr decodes through corrupt disks (GF(2^16) BCH codec)"
      `Quick (fun () ->
        let params = Params.make ~n:300 ~f:10 ~e:2 () in
        let engine =
          Engine.create ~seed:7 ~delay:(Delay.uniform ~lo:0.5 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 1024 '0') ~error_prone:[ 44; 199 ]
            ~num_writers:1 ~num_readers:1 ()
        in
        let config = Soda.Deployment.config d in
        Alcotest.(check string) "rs-bch16 codec" "rs-bch16[300,286]"
          (Erasure.Mds.name config.Soda.Config.code);
        let value = Workload.value ~len:1024 ~seed:7 ~index:0 in
        let result = ref None in
        Soda.Deployment.write d ~writer:0 ~at:0.0 value;
        Soda.Deployment.read d ~reader:0 ~at:200.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        match !result with
        | Some v -> Alcotest.(check bool) "value intact" true (Bytes.equal v value)
        | None -> Alcotest.fail "read did not complete")
  ]

let () =
  Alcotest.run "soak"
    [ ("soak", soak_tests); ("large-n", large_n_tests) ]

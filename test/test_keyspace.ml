(* Tests for the sharded keyspace layer: placement invariants
   (QCheck), bit-identity of the single-key shim against the classic
   deployment, per-key atomicity of multi-key runs, and the message
   economics of the shared plane vs independent deployments. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module Topology = Soda.Topology
module Placement = Soda.Placement
module Keyspace = Soda.Keyspace

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Placement invariants *)

(* feasible random (topology, params, policy, key) instances *)
let placement_gen =
  QCheck2.Gen.(
    let* servers = int_range 5 40 in
    let* domains = int_range 1 servers in
    let* preset = oneofl [ `P4_2; `P10_4 ] in
    let params = Placement.preset_params preset in
    let* policy = oneofl [ Placement.Mod_stripe; Placement.Consistent_hash ] in
    let* key = int_range 0 100_000 in
    return (servers, domains, params, policy, key))

let feasible ~servers ~domains params =
  let n = Params.n params in
  let dused = min domains n in
  let cap = (n + dused - 1) / dused in
  n <= servers
  && (domains > n
      || Topology.min_domain_size (Topology.make ~servers ~domains ()) >= cap)

let placement_tests =
  [ qtest "placed servers are distinct, spread and balanced" placement_gen
      (fun (servers, domains, params, policy, key) ->
        let topology = Topology.make ~servers ~domains () in
        if not (feasible ~servers ~domains params) then
          (* infeasible geometry must be rejected at construction *)
          match Placement.create ~topology ~params ~policy () with
          | exception Invalid_argument _ -> true
          | _ -> false
        else begin
          let p = Placement.create ~topology ~params ~policy () in
          let coords = Placement.servers_of p ~key in
          let n = Params.n params in
          let dused = min domains n in
          let cap = (n + dused - 1) / dused in
          Array.length coords = n
          && List.length
               (List.sort_uniq Int.compare (Array.to_list coords))
             = n
          && Placement.domains_spanned p ~key = dused
          && Placement.max_per_domain p ~key <= cap
        end);
    qtest "placement is a pure function of the key" placement_gen
      (fun (servers, domains, params, policy, key) ->
        QCheck2.assume (feasible ~servers ~domains params);
        let topology = Topology.make ~servers ~domains () in
        let p1 = Placement.create ~topology ~params ~policy () in
        let p2 = Placement.create ~topology ~params ~policy () in
        Placement.servers_of p1 ~key = Placement.servers_of p2 ~key);
    qtest "consecutive coordinates span domains (the D-set property)"
      placement_gen
      (fun (servers, domains, params, policy, key) ->
        QCheck2.assume (feasible ~servers ~domains params);
        let topology = Topology.make ~servers ~domains () in
        let p = Placement.create ~topology ~params ~policy () in
        let coords = Placement.servers_of p ~key in
        (* the first min(f+1, domains) coordinates — the MD primitives'
           distinguished set D — must lie in distinct domains *)
        let d_span = min (Params.f params + 1) domains in
        let seen = Hashtbl.create 8 in
        let ok = ref true in
        for i = 0 to d_span - 1 do
          let d = Topology.domain_of topology coords.(i) in
          if Hashtbl.mem seen d then ok := false;
          Hashtbl.replace seen d ()
        done;
        !ok);
    Alcotest.test_case "domain_safe iff per-domain share <= f" `Quick
      (fun () ->
        let params = Placement.preset_params `P4_2 in
        (* 12 servers / 3 domains: cap = 2 = f -> safe *)
        let safe =
          Placement.create
            ~topology:(Topology.make ~servers:12 ~domains:3 ())
            ~params ()
        in
        Alcotest.(check bool) "3 domains safe" true (Placement.domain_safe safe);
        (* 12 servers / 2 domains: cap = 3 > f -> unsafe *)
        let unsafe =
          Placement.create
            ~topology:(Topology.make ~servers:12 ~domains:2 ())
            ~params ()
        in
        Alcotest.(check bool) "2 domains unsafe" false
          (Placement.domain_safe unsafe));
    Alcotest.test_case "presets and topology validation" `Quick (fun () ->
        Alcotest.(check bool) "4+2" true
          (match Placement.preset_of_string "4+2" with
          | Some `P4_2 -> true
          | _ -> false);
        Alcotest.(check bool) "10+4" true
          (match Placement.preset_of_string "10+4" with
          | Some `P10_4 -> true
          | _ -> false);
        Alcotest.(check bool) "junk" true
          (Placement.preset_of_string "9+9" = None);
        Alcotest.(check bool) "domains > servers rejected" true
          (match Topology.make ~servers:3 ~domains:4 () with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Alcotest.(check bool) "sparse custom ids rejected" true
          (match Topology.custom [| 0; 2; 2 |] with
          | exception Invalid_argument _ -> true
          | _ -> false))
  ]

(* ------------------------------------------------------------------ *)
(* The single-key shim is bit-identical to Deployment.deploy *)

let run_deploy ~seed ~rounds =
  let params = Params.make ~n:6 ~f:2 () in
  let engine =
    Engine.create ~seed ~trace:true ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
  in
  let d =
    Soda.Deployment.deploy ~engine ~params ~num_writers:1 ~num_readers:1 ()
  in
  for i = 0 to rounds - 1 do
    let at = float_of_int i *. 100.0 in
    Soda.Deployment.write d ~writer:0 ~at
      (Harness.Workload.value ~len:128 ~seed ~index:i);
    Soda.Deployment.read d ~reader:0 ~at:(at +. 50.0) ()
  done;
  Engine.run engine;
  engine

let run_shim ~seed ~rounds =
  let params = Params.make ~n:6 ~f:2 () in
  let engine =
    Engine.create ~seed ~trace:true ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
  in
  let topology = Topology.make ~servers:6 ~domains:1 () in
  let placement = Placement.create ~topology ~params () in
  let ks =
    Keyspace.create ~engine ~placement ~mode:`Single ~num_writers:1
      ~num_readers:1 ()
  in
  for i = 0 to rounds - 1 do
    let at = float_of_int i *. 100.0 in
    Keyspace.write ks ~key:0 ~writer:0 ~at
      (Harness.Workload.value ~len:128 ~seed ~index:i);
    Keyspace.read ks ~key:0 ~reader:0 ~at:(at +. 50.0) ()
  done;
  Engine.run engine;
  engine

let shim_tests =
  [ qtest ~count:25 "single-key shim traces are bit-identical to deploy"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let e1 = run_deploy ~seed ~rounds:3 in
        let e2 = run_shim ~seed ~rounds:3 in
        Engine.trace_events e1 = Engine.trace_events e2
        && Engine.messages_sent e1 = Engine.messages_sent e2
        && Engine.messages_data e1 = Engine.messages_data e2
        && Engine.messages_meta e1 = Engine.messages_meta e2
        && Engine.events_executed e1 = Engine.events_executed e2
        && Engine.now e1 = Engine.now e2);
    Alcotest.test_case "shim serves only key 0" `Quick (fun () ->
        let params = Params.make ~n:5 ~f:1 () in
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let topology = Topology.make ~servers:5 ~domains:1 () in
        let placement = Placement.create ~topology ~params () in
        let ks =
          Keyspace.create ~engine ~placement ~mode:`Single ~num_writers:1
            ~num_readers:1 ()
        in
        Alcotest.(check bool) "key 1 rejected" true
          (match Keyspace.write ks ~key:1 ~writer:0 ~at:0.0 Bytes.empty with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "create validates topology against n" `Quick (fun () ->
        let params = Params.make ~n:5 ~f:1 () in
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let topology = Topology.make ~servers:8 ~domains:2 () in
        let placement = Placement.create ~topology ~params () in
        Alcotest.(check bool) "`Single over 8 servers rejected" true
          (match
             Keyspace.create ~engine ~placement ~mode:`Single ~num_writers:1
               ~num_readers:1 ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false);
        let engine2 = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let topology2 = Topology.make ~servers:8 ~domains:2 () in
        Alcotest.(check bool) "mismatched placement rejected" true
          (match
             Soda.Deployment.create ~engine:engine2
               ~topology:(Topology.make ~servers:8 ~domains:4 ())
               ~placement:
                 (Placement.create ~topology:topology2 ~params ())
               ~num_writers:1 ~num_readers:1 ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false))
  ]

(* ------------------------------------------------------------------ *)
(* Multi-key runs *)

let sharded_tests =
  [ qtest ~count:20 "sharded runs are live and atomic per key"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let topology = Topology.make ~servers:12 ~domains:3 () in
        let placement =
          Placement.create ~topology
            ~params:(Placement.preset_params `P4_2)
            ~policy:Placement.Consistent_hash ()
        in
        let wl =
          Harness.Workload.sharded_mixed ~keys:24 ~value_len:64 ~seed
            ~num_writers:3 ~num_readers:3 ()
        in
        let r = Harness.Runner.run_sharded ~placement wl in
        r.Harness.Runner.s_complete && r.Harness.Runner.s_atomic
        && r.Harness.Runner.s_keys = 24);
    Alcotest.test_case "reads see the key's own write, not a neighbour's"
      `Quick (fun () ->
        let topology = Topology.make ~servers:9 ~domains:3 () in
        let placement =
          Placement.create ~topology
            ~params:(Placement.preset_params `P4_2)
            ()
        in
        let engine = Engine.create ~seed:5 ~delay:(Delay.constant 1.0) () in
        let ks =
          Keyspace.create ~engine ~placement ~num_writers:1 ~num_readers:1 ()
        in
        let results = Hashtbl.create 8 in
        for key = 0 to 7 do
          Keyspace.write ks ~key ~writer:0 ~at:0.0
            (Bytes.of_string (Printf.sprintf "value-%d" key));
          Keyspace.read ks ~key ~reader:0 ~at:40.0
            ~on_done:(fun v -> Hashtbl.replace results key v)
            ()
        done;
        Engine.run engine;
        for key = 0 to 7 do
          match Hashtbl.find_opt results key with
          | Some v ->
            Alcotest.(check string)
              (Printf.sprintf "key %d" key)
              (Printf.sprintf "value-%d" key)
              (Bytes.to_string v)
          | None -> Alcotest.fail (Printf.sprintf "key %d: read incomplete" key)
        done);
    Alcotest.test_case
      "shared plane beats independent deployments on msgs/op" `Quick
      (fun () ->
        let params = Placement.preset_params `P4_2 in
        let topology = Topology.make ~servers:12 ~domains:3 () in
        let placement =
          Placement.create ~topology ~params
            ~policy:Placement.Consistent_hash ()
        in
        let wl =
          Harness.Workload.sharded_mixed ~keys:60 ~value_len:64 ~seed:11
            ~num_writers:4 ~num_readers:4 ~round_gap:10.0 ()
        in
        let shared =
          Harness.Runner.run_sharded ~plane:Soda.Config.batched_plane
            ~placement wl
        in
        (* the pre-keyspace composition this PR replaces: one default-
           plane deployment per key (broadcast read gossip) *)
        let independent =
          Harness.Runner.run_sharded_independent ~params wl
        in
        (* same composition with every per-key plane already batched —
           the strongest per-key baseline *)
        let independent_batched =
          Harness.Runner.run_sharded_independent
            ~plane:Soda.Config.batched_plane ~params wl
        in
        Alcotest.(check bool) "shared complete" true
          shared.Harness.Runner.s_complete;
        Alcotest.(check bool) "independent complete" true
          independent.Harness.Runner.s_complete;
        let m_shared = Harness.Metrics.sharded_msgs_per_op shared in
        let m_indep = Harness.Metrics.sharded_msgs_per_op independent in
        let m_indep_b = Harness.Metrics.sharded_msgs_per_op independent_batched in
        Alcotest.(check bool)
          (Printf.sprintf "msgs/op %.2f < %.2f (vs default planes)" m_shared
             m_indep)
          true (m_shared < m_indep);
        Alcotest.(check bool)
          (Printf.sprintf "msgs/op %.2f <= %.2f (vs batched planes)" m_shared
             m_indep_b)
          true (m_shared <= m_indep_b);
        (* coalescing factor: the shared plane packs more logical units
           into an average frame than per-key planes can *)
        Alcotest.(check bool) "frames actually coalesce" true
          (Harness.Metrics.sharded_units_per_msg shared
          > Harness.Metrics.sharded_units_per_msg independent_batched))
  ]

let () =
  Alcotest.run "keyspace"
    [ ("placement", placement_tests);
      ("shim", shim_tests);
      ("sharded", sharded_tests)
    ]

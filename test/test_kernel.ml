(* Differential tests for the table-driven codec kernel: every codec's
   row-major, table-driven encode/decode must agree byte-for-byte with
   a straightforward stripe-major reference built on [Gf.mul_slow]
   (the shift-and-add multiplier — independent of the log/exp AND the
   product tables). The reference mirrors the pre-kernel
   implementations of the four Reed-Solomon variants. *)

module Gf = Galois.Gf
module Gf16 = Galois.Gf16
module Splitter = Erasure.Splitter
module Fragment = Erasure.Fragment
module Kernel = Erasure.Kernel

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Slow fields: table-free multiplication throughout. *)

module SlowGf : Galois.Field.S with type t = int = struct
  include Galois.Gf

  let mul = Galois.Gf.mul_slow
  let div a b = Galois.Gf.mul_slow a (Galois.Gf.inv b)
end

module SlowGf16 : Galois.Field.S with type t = int = struct
  include Galois.Gf16

  let mul = Galois.Gf16.mul_slow
  let div a b = Galois.Gf16.mul_slow a (Galois.Gf16.inv b)
end

module SlowMatrix = Galois.Matrix_gen.Make (SlowGf)
module SlowMatrix16 = Galois.Matrix_gen.Make (SlowGf16)
module SlowPoly = Galois.Poly_gen.Make (SlowGf)

(* ------------------------------------------------------------------ *)
(* Reference encoders/decoders: stripe-major triple loops, one symbol
   at a time, exactly like the seed implementations. *)

let get8 buf i = Char.code (Bytes.get buf i)
let set8 buf i v = Bytes.set buf i (Char.chr v)
let get16 buf i = Bytes.get_uint16_be buf (2 * i)
let set16 buf i v = Bytes.set_uint16_be buf (2 * i) v

(* Apply an [n x k] matrix (given as rows) stripe by stripe. *)
let ref_matrix_encode ~mul ~get ~set ~bps rows ~k framed =
  let n = Array.length rows in
  let stripes = Bytes.length framed / (k * bps) in
  Array.init n (fun i ->
      let out = Bytes.create (stripes * bps) in
      let row = rows.(i) in
      for s = 0 to stripes - 1 do
        let acc = ref 0 in
        for j = 0 to k - 1 do
          acc := !acc lxor mul row.(j) (get framed ((s * k) + j))
        done;
        set out s !acc
      done;
      out)

let ref_matrix_decode ~mul ~get ~set ~bps inv_rows ~k datas stripes =
  let framed = Bytes.create (stripes * k * bps) in
  for s = 0 to stripes - 1 do
    for j = 0 to k - 1 do
      let row = inv_rows.(j) in
      let acc = ref 0 in
      for l = 0 to k - 1 do
        acc := !acc lxor mul row.(l) (get datas.(l) s)
      done;
      set framed ((s * k) + j) !acc
    done
  done;
  framed

let ref_encode_vand ~n ~k value =
  let framed = Splitter.frame ~k value in
  let g = SlowMatrix.vandermonde ~rows:n ~cols:k in
  let rows = Array.init n (SlowMatrix.row g) in
  ref_matrix_encode ~mul:Gf.mul_slow ~get:get8 ~set:set8 ~bps:1 rows ~k framed

let slow_sys_generator ~n ~k =
  let v = SlowMatrix.vandermonde ~rows:n ~cols:k in
  let top = SlowMatrix.select_rows v (Array.init k (fun i -> i)) in
  SlowMatrix.mul v (SlowMatrix.invert top)

let ref_encode_sys ~n ~k value =
  let framed = Splitter.frame ~k value in
  let g = slow_sys_generator ~n ~k in
  let rows = Array.init n (SlowMatrix.row g) in
  ref_matrix_encode ~mul:Gf.mul_slow ~get:get8 ~set:set8 ~bps:1 rows ~k framed

let ref_encode_rs16 ~n ~k value =
  let framed = Splitter.frame ~k:(2 * k) value in
  let g = SlowMatrix16.vandermonde ~rows:n ~cols:k in
  let rows = Array.init n (SlowMatrix16.row g) in
  ref_matrix_encode ~mul:Gf16.mul_slow ~get:get16 ~set:set16 ~bps:2 rows ~k
    framed

(* Systematic BCH-form encode: parity = x^(n-k) M(x) mod g, computed per
   stripe with slow polynomial arithmetic (the seed's encode_stripe). *)
let ref_encode_bch ~n ~k value =
  let parity_len = n - k in
  let g = ref SlowPoly.one in
  for j = 1 to parity_len do
    g := SlowPoly.mul !g (SlowPoly.of_list [ SlowGf.alpha_pow j; SlowGf.one ])
  done;
  let g = !g in
  let framed = Splitter.frame ~k value in
  let stripes = Bytes.length framed / k in
  let outputs = Array.init n (fun _ -> Bytes.create stripes) in
  for s = 0 to stripes - 1 do
    let msg = Array.init k (fun j -> get8 framed ((s * k) + j)) in
    let cw = Array.make n 0 in
    if parity_len = 0 then Array.blit msg 0 cw 0 k
    else begin
      let shifted =
        SlowPoly.of_coeffs
          (Array.init n (fun i ->
               if i < parity_len then 0 else msg.(i - parity_len)))
      in
      let parity = SlowPoly.rem shifted g in
      for i = 0 to parity_len - 1 do
        cw.(i) <- SlowPoly.coeff parity i
      done;
      Array.blit msg 0 cw parity_len k
    end;
    for i = 0 to n - 1 do
      set8 outputs.(i) s cw.(i)
    done
  done;
  outputs

(* ------------------------------------------------------------------ *)
(* Generators *)

let bytes_gen max_len =
  QCheck2.Gen.(string_size (int_range 0 max_len) >|= Bytes.of_string)

(* (n, k, value): n in [2, 12], 1 <= k <= n *)
let nkv_gen =
  QCheck2.Gen.(
    int_range 2 12 >>= fun n ->
    int_range 1 n >>= fun k ->
    bytes_gen 1200 >|= fun v -> (n, k, v))

(* A shuffled choice of exactly [k] distinct fragment indices. *)
let subset_gen ~n k =
  QCheck2.Gen.(
    shuffle_a (Array.init n (fun i -> i)) >|= fun perm -> Array.sub perm 0 k)

let fragments_equal frags refs =
  Array.length frags = Array.length refs
  && Array.for_all2 (fun f r -> Bytes.equal (Fragment.data f) r) frags refs

let pick frags indices =
  Array.to_list (Array.map (fun i -> frags.(i)) indices)

(* ------------------------------------------------------------------ *)
(* Encode differentials *)

let encode_tests =
  [ qtest "vandermonde encode = mul_slow reference" nkv_gen
      (fun (n, k, v) ->
        let code = Erasure.Rs_vandermonde.make ~n ~k in
        fragments_equal (Erasure.Rs_vandermonde.encode code v)
          (ref_encode_vand ~n ~k v));
    qtest "systematic encode = mul_slow reference" nkv_gen
      (fun (n, k, v) ->
        let code = Erasure.Rs_systematic.make ~n ~k in
        fragments_equal (Erasure.Rs_systematic.encode code v)
          (ref_encode_sys ~n ~k v));
    qtest "bch encode = slow-polynomial reference" nkv_gen
      (fun (n, k, v) ->
        let code = Erasure.Rs_bch.make ~n ~k in
        fragments_equal (Erasure.Rs_bch.encode code v) (ref_encode_bch ~n ~k v));
    qtest "rs16 encode = mul_slow reference" nkv_gen
      (fun (n, k, v) ->
        let code = Erasure.Rs16.make ~n ~k in
        fragments_equal (Erasure.Rs16.encode code v) (ref_encode_rs16 ~n ~k v))
  ]

(* ------------------------------------------------------------------ *)
(* Decode differentials: a random k-subset of fragments, decoded both by
   the kernel codec and by slow submatrix inversion. *)

let decode_vand_gen =
  QCheck2.Gen.(
    nkv_gen >>= fun (n, k, v) ->
    subset_gen ~n k >|= fun indices -> (n, k, v, indices))

let decode_tests =
  [ qtest "vandermonde decode (k random fragments) = slow reference"
      decode_vand_gen
      (fun (n, k, v, indices) ->
        let code = Erasure.Rs_vandermonde.make ~n ~k in
        let frags = Erasure.Rs_vandermonde.encode code v in
        let chosen = pick frags indices in
        let decoded = Erasure.Rs_vandermonde.decode code chosen in
        let g = SlowMatrix.vandermonde ~rows:n ~cols:k in
        let inv = SlowMatrix.invert (SlowMatrix.select_rows g indices) in
        let inv_rows = Array.init k (SlowMatrix.row inv) in
        let datas = Array.map Fragment.data (Array.of_list chosen) in
        let stripes = Bytes.length datas.(0) in
        let framed =
          ref_matrix_decode ~mul:Gf.mul_slow ~get:get8 ~set:set8 ~bps:1
            inv_rows ~k datas stripes
        in
        Bytes.equal decoded (Splitter.unframe framed)
        && Bytes.equal decoded v);
    qtest "systematic decode (k random fragments) = slow reference"
      decode_vand_gen
      (fun (n, k, v, indices) ->
        let code = Erasure.Rs_systematic.make ~n ~k in
        let frags = Erasure.Rs_systematic.encode code v in
        let chosen = pick frags indices in
        let decoded = Erasure.Rs_systematic.decode code chosen in
        let g = slow_sys_generator ~n ~k in
        let inv = SlowMatrix.invert (SlowMatrix.select_rows g indices) in
        let inv_rows = Array.init k (SlowMatrix.row inv) in
        let datas = Array.map Fragment.data (Array.of_list chosen) in
        let stripes = Bytes.length datas.(0) in
        let framed =
          ref_matrix_decode ~mul:Gf.mul_slow ~get:get8 ~set:set8 ~bps:1
            inv_rows ~k datas stripes
        in
        Bytes.equal decoded (Splitter.unframe framed)
        && Bytes.equal decoded v);
    qtest "rs16 decode (k random fragments) = slow reference" decode_vand_gen
      (fun (n, k, v, indices) ->
        let code = Erasure.Rs16.make ~n ~k in
        let frags = Erasure.Rs16.encode code v in
        let chosen = pick frags indices in
        let decoded = Erasure.Rs16.decode code chosen in
        let g = SlowMatrix16.vandermonde ~rows:n ~cols:k in
        let inv = SlowMatrix16.invert (SlowMatrix16.select_rows g indices) in
        let inv_rows = Array.init k (SlowMatrix16.row inv) in
        let datas = Array.map Fragment.data (Array.of_list chosen) in
        let stripes = Bytes.length datas.(0) / 2 in
        let framed =
          ref_matrix_decode ~mul:Gf16.mul_slow ~get:get16 ~set:set16 ~bps:2
            inv_rows ~k datas stripes
        in
        Bytes.equal decoded (Splitter.unframe framed)
        && Bytes.equal decoded v)
  ]

(* ------------------------------------------------------------------ *)
(* BCH: random erasure + error patterns within the correction radius. *)

let bch_pattern_gen =
  QCheck2.Gen.(
    int_range 2 12 >>= fun n ->
    int_range 1 n >>= fun k ->
    int_range 0 (n - k) >>= fun erasures ->
    int_range 0 ((n - k - erasures) / 2) >>= fun errors ->
    shuffle_a (Array.init n (fun i -> i)) >>= fun perm ->
    bytes_gen 800 >|= fun v ->
    let erased = Array.sub perm 0 erasures in
    let corrupted = Array.sub perm erasures errors in
    (n, k, v, erased, corrupted))

let bch_tests =
  [ qtest "bch decode corrects random erasure+error patterns"
      bch_pattern_gen
      (fun (n, k, v, erased, corrupted) ->
        let code = Erasure.Rs_bch.make ~n ~k in
        let frags = Erasure.Rs_bch.encode code v in
        let received =
          Array.to_list frags
          |> List.filter (fun f ->
                 not (Array.mem (Fragment.index f) erased))
          |> List.map (fun f ->
                 if Array.mem (Fragment.index f) corrupted then
                   Fragment.corrupt f ~seed:11
                 else f)
        in
        Bytes.equal (Erasure.Rs_bch.decode code received) v);
    qtest ~count:20 "bch16 decode corrects random erasure+error patterns"
      bch_pattern_gen
      (fun (n, k, v, erased, corrupted) ->
        let code = Erasure.Rs_bch16.make ~n ~k in
        let frags = Erasure.Rs_bch16.encode code v in
        let received =
          Array.to_list frags
          |> List.filter (fun f ->
                 not (Array.mem (Fragment.index f) erased))
          |> List.map (fun f ->
                 if Array.mem (Fragment.index f) corrupted then
                   Fragment.corrupt f ~seed:13
                 else f)
        in
        Bytes.equal (Erasure.Rs_bch16.decode code received) v)
  ]

(* ------------------------------------------------------------------ *)
(* Buffer primitives against mul_slow, symbol by symbol. *)

let buf_tests =
  [ qtest ~count:100 "Gf.muladd_buf = mul_slow per byte"
      QCheck2.Gen.(
        triple (int_range 0 255) (bytes_gen 300) (int_range 0 40))
      (fun (c, src, off) ->
        let off = min off (Bytes.length src) in
        let len = Bytes.length src - off in
        let dst0 = Bytes.init (Bytes.length src) (fun i -> Char.chr ((i * 7) land 0xff)) in
        let dst = Bytes.copy dst0 in
        Gf.muladd_buf (Gf.mul_table c) ~src ~dst ~off ~len;
        let ok = ref true in
        for i = 0 to Bytes.length src - 1 do
          let expect =
            if i >= off && i < off + len then
              Char.code (Bytes.get dst0 i)
              lxor Gf.mul_slow c (Char.code (Bytes.get src i))
            else Char.code (Bytes.get dst0 i)
          in
          if Char.code (Bytes.get dst i) <> expect then ok := false
        done;
        !ok);
    qtest ~count:100 "Gf16.mul_buf/muladd_buf = mul_slow per symbol"
      QCheck2.Gen.(
        pair (int_range 0 65535) (string_size (int_range 0 150) >|= Bytes.of_string))
      (fun (c, raw) ->
        let symbols = Bytes.length raw / 2 in
        let src = Bytes.sub raw 0 (2 * symbols) in
        let dst = Bytes.make (2 * symbols) '\x00' in
        let t = Gf16.mul_tables c in
        Gf16.mul_buf t ~src ~dst ~off:0 ~len:symbols;
        let ok = ref true in
        for s = 0 to symbols - 1 do
          if
            Bytes.get_uint16_be dst (2 * s)
            <> Gf16.mul_slow c (Bytes.get_uint16_be src (2 * s))
          then ok := false
        done;
        (* muladd on top of mul doubles every term: must zero out *)
        Gf16.muladd_buf t ~src ~dst ~off:0 ~len:symbols;
        for s = 0 to symbols - 1 do
          if Bytes.get_uint16_be dst (2 * s) <> 0 then ok := false
        done;
        !ok);
    qtest ~count:150 "Gf word sweeps = mul_slow (unaligned off/len)"
      QCheck2.Gen.(
        quad (int_range 0 255) (bytes_gen 200) (int_range 0 17) (int_range 0 17))
      (fun (c, raw, soff, doff) ->
        (* independent, deliberately unaligned offsets into src and dst *)
        let wt = Gf.wtable c in
        let soff = min soff (Bytes.length raw) in
        let len = max 0 (Bytes.length raw - max soff doff) in
        let src = raw in
        let dst0 =
          Bytes.init (doff + len) (fun i -> Char.chr ((i * 11) land 0xff))
        in
        let dst = Bytes.copy dst0 in
        Gf.muladd_buf_w wt ~src ~soff ~dst ~doff ~len;
        let ok = ref true in
        for i = 0 to len - 1 do
          let expect =
            Char.code (Bytes.get dst0 (doff + i))
            lxor Gf.mul_slow c (Char.code (Bytes.get src (soff + i)))
          in
          if Char.code (Bytes.get dst (doff + i)) <> expect then ok := false
        done;
        (* mul overwrites *)
        Gf.mul_buf_w wt ~src ~soff ~dst ~doff ~len;
        for i = 0 to len - 1 do
          if
            Char.code (Bytes.get dst (doff + i))
            <> Gf.mul_slow c (Char.code (Bytes.get src (soff + i)))
          then ok := false
        done;
        !ok);
    qtest ~count:100 "Gf muladd_buf_w aliased src == dst"
      QCheck2.Gen.(
        triple (int_range 0 255) (bytes_gen 120) (int_range 0 9))
      (fun (c, raw, off) ->
        let off = min off (Bytes.length raw) in
        let len = Bytes.length raw - off in
        let buf = Bytes.copy raw in
        Gf.muladd_buf_w (Gf.wtable c) ~src:buf ~soff:off ~dst:buf ~doff:off ~len;
        let ok = ref true in
        for i = off to off + len - 1 do
          let x = Char.code (Bytes.get raw i) in
          if Char.code (Bytes.get buf i) <> x lxor Gf.mul_slow c x then
            ok := false
        done;
        !ok);
    qtest ~count:100 "Wops.xor_into = bytewise xor (unaligned)"
      QCheck2.Gen.(
        triple (bytes_gen 200) (int_range 0 13) (int_range 0 13))
      (fun (raw, soff, doff) ->
        let soff = min soff (Bytes.length raw) in
        let len = max 0 (Bytes.length raw - max soff doff) in
        let dst0 =
          Bytes.init (doff + len) (fun i -> Char.chr ((i * 29) land 0xff))
        in
        let dst = Bytes.copy dst0 in
        Galois.Wops.xor_into ~src:raw ~soff ~dst ~doff ~len;
        let ok = ref true in
        for i = 0 to len - 1 do
          if
            Char.code (Bytes.get dst (doff + i))
            <> Char.code (Bytes.get dst0 (doff + i))
               lxor Char.code (Bytes.get raw (soff + i))
          then ok := false
        done;
        !ok);
    qtest ~count:60 "Gf16 word sweeps = mul_slow per symbol"
      QCheck2.Gen.(
        triple (int_range 0 65535)
          (string_size (int_range 0 160) >|= Bytes.of_string)
          (int_range 0 5))
      (fun (c, raw, symoff) ->
        let wt = Gf16.wtable c in
        let symbols = max 0 ((Bytes.length raw / 2) - symoff) in
        let soff = 2 * symoff and len = 2 * symbols in
        let dst0 =
          Bytes.init (2 * symbols) (fun i -> Char.chr ((i * 23) land 0xff))
        in
        let dst = Bytes.copy dst0 in
        Gf16.muladd_buf_w wt ~src:raw ~soff ~dst ~doff:0 ~len;
        let ok = ref true in
        for s = 0 to symbols - 1 do
          let expect =
            Bytes.get_uint16_be dst0 (2 * s)
            lxor Gf16.mul_slow c (Bytes.get_uint16_be raw (soff + (2 * s)))
          in
          if Bytes.get_uint16_be dst (2 * s) <> expect then ok := false
        done;
        Gf16.mul_buf_w wt ~src:raw ~soff ~dst ~doff:0 ~len;
        for s = 0 to symbols - 1 do
          if
            Bytes.get_uint16_be dst (2 * s)
            <> Gf16.mul_slow c (Bytes.get_uint16_be raw (soff + (2 * s)))
          then ok := false
        done;
        !ok);
    qtest ~count:100 "split_cols/merge_cols round-trip"
      QCheck2.Gen.(
        triple (int_range 1 10) (int_range 1 3) (int_range 0 60))
      (fun (k, bps, stripes) ->
        let framed =
          Bytes.init (k * bps * stripes) (fun i -> Char.chr ((i * 13) land 0xff))
        in
        let cols = Kernel.split_cols ~k ~bps framed in
        Bytes.equal (Kernel.merge_cols ~k ~bps cols) framed)
  ]

(* ------------------------------------------------------------------ *)
(* Domain-parallel paths must produce identical bytes. *)

let parallel_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:30 ~name:"parallel_rows covers [0, n) exactly"
         QCheck2.Gen.(pair (int_range 0 200) (int_range 1 5))
         (fun (n, domains) ->
           let hits = Array.make (max n 1) 0 in
           Kernel.parallel_rows ~domains ~min_chunk:1 ~n (fun ~lo ~len ->
               for i = lo to lo + len - 1 do
                 (* chunks are disjoint: no two domains touch the same i *)
                 hits.(i) <- hits.(i) + 1
               done);
           n = 0 || Array.for_all (fun h -> h = 1) hits));
    Alcotest.test_case "multi-domain encode/decode = single-domain" `Quick
      (fun () ->
        (* big enough that parallel_rows really shards: stripes >= 2 * 4096 *)
        let value =
          Bytes.init 70_000 (fun i -> Char.chr ((i * 31) land 0xff))
        in
        let check codec =
          let seq = Erasure.Mds.encode codec value in
          let par = Erasure.Mds.encode ~domains:3 codec value in
          Alcotest.(check bool)
            (Erasure.Mds.name codec ^ " encode identical")
            true
            (Array.for_all2 Fragment.equal seq par);
          let survivors =
            Array.to_list par
            |> List.filteri (fun i _ ->
                   i >= Erasure.Mds.n codec - Erasure.Mds.k codec)
          in
          Alcotest.(check bool)
            (Erasure.Mds.name codec ^ " decode identical")
            true
            (Bytes.equal (Erasure.Mds.decode ~domains:3 codec survivors) value)
        in
        check (Erasure.Mds.rs_vandermonde ~n:6 ~k:4);
        check (Erasure.Mds.rs_systematic ~n:6 ~k:4);
        check (Erasure.Mds.rs_bch ~n:6 ~k:4);
        check (Erasure.Mds.rs16 ~n:6 ~k:4))
  ]

let () =
  Alcotest.run "kernel"
    [ ("encode-differential", encode_tests);
      ("decode-differential", decode_tests);
      ("bch-patterns", bch_tests);
      ("buffer-primitives", buf_tests);
      ("parallel", parallel_tests)
    ]

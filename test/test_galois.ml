(* Tests for the GF(2^8) field, polynomial and matrix substrates. *)

module Gf = Galois.Gf
module Poly = Galois.Poly
module Matrix = Galois.Matrix

let gf_gen = QCheck2.Gen.int_range 0 255
let gf_nonzero_gen = QCheck2.Gen.int_range 1 255

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Field axioms *)

let field_tests =
  [ qtest "add commutative" QCheck2.Gen.(pair gf_gen gf_gen) (fun (a, b) ->
        Gf.add a b = Gf.add b a);
    qtest "add associative"
      QCheck2.Gen.(triple gf_gen gf_gen gf_gen)
      (fun (a, b, c) -> Gf.add (Gf.add a b) c = Gf.add a (Gf.add b c));
    qtest "add identity" gf_gen (fun a -> Gf.add a Gf.zero = a);
    qtest "add self-inverse" gf_gen (fun a -> Gf.add a a = Gf.zero);
    qtest "mul commutative" QCheck2.Gen.(pair gf_gen gf_gen) (fun (a, b) ->
        Gf.mul a b = Gf.mul b a);
    qtest "mul associative"
      QCheck2.Gen.(triple gf_gen gf_gen gf_gen)
      (fun (a, b, c) -> Gf.mul (Gf.mul a b) c = Gf.mul a (Gf.mul b c));
    qtest "mul identity" gf_gen (fun a -> Gf.mul a Gf.one = a);
    qtest "mul zero annihilates" gf_gen (fun a -> Gf.mul a Gf.zero = Gf.zero);
    qtest "distributivity"
      QCheck2.Gen.(triple gf_gen gf_gen gf_gen)
      (fun (a, b, c) ->
        Gf.mul a (Gf.add b c) = Gf.add (Gf.mul a b) (Gf.mul a c));
    qtest "mul matches reference mul_slow"
      QCheck2.Gen.(pair gf_gen gf_gen)
      (fun (a, b) -> Gf.mul a b = Gf.mul_slow a b);
    qtest "inverse" gf_nonzero_gen (fun a -> Gf.mul a (Gf.inv a) = Gf.one);
    qtest "division" QCheck2.Gen.(pair gf_gen gf_nonzero_gen) (fun (a, b) ->
        Gf.mul (Gf.div a b) b = a);
    qtest "log/exp round-trip" gf_nonzero_gen (fun a ->
        Gf.alpha_pow (Gf.log a) = a);
    qtest "pow adds exponents"
      QCheck2.Gen.(pair (int_range (-300) 300) (int_range (-300) 300))
      (fun (i, j) ->
        Gf.mul (Gf.alpha_pow i) (Gf.alpha_pow j) = Gf.alpha_pow (i + j));
    Alcotest.test_case "alpha is primitive (order 255)" `Quick (fun () ->
        (* alpha^m = 1 only at multiples of 255. *)
        for m = 1 to 254 do
          Alcotest.(check bool)
            (Printf.sprintf "alpha^%d <> 1" m)
            false
            (Gf.alpha_pow m = Gf.one)
        done;
        Alcotest.(check int) "alpha^255 = 1" Gf.one (Gf.alpha_pow 255));
    Alcotest.test_case "of_int validates range" `Quick (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "Gf.of_int: -1 out of range [0, 255]")
          (fun () -> ignore (Gf.of_int (-1)));
        Alcotest.(check int) "valid" 77 (Gf.of_int 77));
    Alcotest.test_case "division by zero raises" `Quick (fun () ->
        Alcotest.check_raises "div" Division_by_zero (fun () ->
            ignore (Gf.div 3 0));
        Alcotest.check_raises "inv" Division_by_zero (fun () ->
            ignore (Gf.inv 0)));
    Alcotest.test_case "pow edge cases" `Quick (fun () ->
        Alcotest.(check int) "0^0 = 1" 1 (Gf.pow 0 0);
        Alcotest.(check int) "0^5 = 0" 0 (Gf.pow 0 5);
        Alcotest.check_raises "0^-1" Division_by_zero (fun () ->
            ignore (Gf.pow 0 (-1))))
  ]

(* ------------------------------------------------------------------ *)
(* Polynomials *)

let poly_gen =
  QCheck2.Gen.(list_size (int_range 0 12) gf_gen >|= Poly.of_list)

let poly_nonzero_gen =
  QCheck2.Gen.(
    poly_gen >>= fun p ->
    if Poly.is_zero p then gf_nonzero_gen >|= fun c -> Poly.of_list [ c ]
    else return p)

let poly_tests =
  [ qtest "add commutative" QCheck2.Gen.(pair poly_gen poly_gen)
      (fun (p, q) -> Poly.equal (Poly.add p q) (Poly.add q p));
    qtest "add self cancels" poly_gen (fun p ->
        Poly.is_zero (Poly.add p p));
    qtest "mul commutative" QCheck2.Gen.(pair poly_gen poly_gen)
      (fun (p, q) -> Poly.equal (Poly.mul p q) (Poly.mul q p));
    qtest "mul distributes over add"
      QCheck2.Gen.(triple poly_gen poly_gen poly_gen)
      (fun (p, q, r) ->
        Poly.equal
          (Poly.mul p (Poly.add q r))
          (Poly.add (Poly.mul p q) (Poly.mul p r)));
    qtest "mul degree adds"
      QCheck2.Gen.(pair poly_nonzero_gen poly_nonzero_gen)
      (fun (p, q) ->
        Poly.degree (Poly.mul p q) = Poly.degree p + Poly.degree q);
    qtest "div_mod identity"
      QCheck2.Gen.(pair poly_gen poly_nonzero_gen)
      (fun (num, den) ->
        let q, r = Poly.div_mod num den in
        Poly.equal num (Poly.add (Poly.mul q den) r)
        && Poly.degree r < Poly.degree den);
    qtest "eval is a ring morphism at any point"
      QCheck2.Gen.(triple poly_gen poly_gen gf_gen)
      (fun (p, q, x) ->
        Gf.add (Poly.eval p x) (Poly.eval q x)
        = Poly.eval (Poly.add p q) x
        && Gf.mul (Poly.eval p x) (Poly.eval q x)
           = Poly.eval (Poly.mul p q) x);
    qtest "shift then coeff" QCheck2.Gen.(pair poly_gen (int_range 0 6))
      (fun (p, d) ->
        let shifted = Poly.shift d p in
        Poly.is_zero p
        || Poly.coeff shifted d = Poly.coeff p 0
           && Poly.degree shifted = Poly.degree p + d);
    qtest "derivative of p^2 vanishes" poly_gen (fun p ->
        (* In characteristic 2, (p^2)' = 2 p p' = 0. *)
        Poly.is_zero (Poly.derivative (Poly.mul p p)));
    qtest "product rule"
      QCheck2.Gen.(pair poly_gen poly_gen)
      (fun (p, q) ->
        Poly.equal
          (Poly.derivative (Poly.mul p q))
          (Poly.add
             (Poly.mul (Poly.derivative p) q)
             (Poly.mul p (Poly.derivative q))));
    Alcotest.test_case "normalization trims trailing zeros" `Quick (fun () ->
        let p = Poly.of_list [ 1; 2; 0; 0 ] in
        Alcotest.(check int) "degree" 1 (Poly.degree p);
        Alcotest.(check bool) "zero poly" true
          (Poly.is_zero (Poly.of_list [ 0; 0 ])));
    Alcotest.test_case "monomial" `Quick (fun () ->
        let p = Poly.monomial 3 5 in
        Alcotest.(check int) "degree" 3 (Poly.degree p);
        Alcotest.(check int) "coeff" 5 (Poly.coeff p 3);
        Alcotest.(check bool) "zero coefficient gives zero poly" true
          (Poly.is_zero (Poly.monomial 4 0)));
    Alcotest.test_case "truncate" `Quick (fun () ->
        let p = Poly.of_list [ 1; 2; 3; 4 ] in
        let q = Poly.truncate 2 p in
        Alcotest.(check int) "degree" 1 (Poly.degree q);
        Alcotest.(check int) "c0" 1 (Poly.coeff q 0);
        Alcotest.(check int) "c1" 2 (Poly.coeff q 1));
    Alcotest.test_case "div by zero raises" `Quick (fun () ->
        Alcotest.check_raises "raise" Division_by_zero (fun () ->
            ignore (Poly.div_mod Poly.one Poly.zero)))
  ]

let interpolation_tests =
  [ qtest ~count:300 "interpolation recovers the original polynomial"
      QCheck2.Gen.(
        poly_gen >>= fun p ->
        let d = max 1 (Poly.degree p + 1) in
        (* evaluate at d distinct points: alpha^0 .. alpha^(d-1) *)
        return (p, Array.init d (fun i -> Gf.alpha_pow i)))
      (fun (p, xs) ->
        let points = Array.map (fun x -> (x, Poly.eval p x)) xs in
        Poly.equal (Poly.interpolate points) p);
    qtest ~count:300 "interpolant passes through every point"
      QCheck2.Gen.(
        int_range 1 10 >>= fun d ->
        array_size (return d) gf_gen >|= fun ys ->
        Array.mapi (fun i y -> (Gf.alpha_pow i, y)) ys)
      (fun points ->
        let p = Poly.interpolate points in
        Poly.degree p < Array.length points
        && Array.for_all (fun (x, y) -> Poly.eval p x = y) points);
    Alcotest.test_case "duplicate abscissae rejected" `Quick (fun () ->
        Alcotest.(check bool) "rejected" true
          (match Poly.interpolate [| (3, 1); (3, 2) |] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    qtest ~count:100
      "interpolation decodes Reed-Solomon like the matrix decoder"
      QCheck2.Gen.(
        int_range 1 8 >>= fun k ->
        int_range k 20 >>= fun n ->
        array_size (return k) gf_gen >>= fun message ->
        shuffle_a (Array.init n (fun i -> i)) >|= fun perm ->
        (n, k, message, Array.sub perm 0 k))
      (fun (_, k, message, indices) ->
        (* encode one stripe with the Vandermonde code: c_i = m(alpha^i);
           decoding via interpolation must recover the message poly *)
        let m = Poly.of_coeffs message in
        let points =
          Array.map (fun i -> (Gf.alpha_pow i, Poly.eval m (Gf.alpha_pow i))) indices
        in
        let recovered = Poly.interpolate points in
        Array.for_all
          (fun j -> Poly.coeff recovered j = Poly.coeff m j)
          (Array.init k (fun j -> j)))
  ]

(* ------------------------------------------------------------------ *)
(* Matrices *)

let square_matrix_gen dim =
  QCheck2.Gen.(
    array_size (return (dim * dim)) gf_gen >|= fun a ->
    Matrix.create ~rows:dim ~cols:dim (fun i j -> a.((i * dim) + j)))

let matrix_tests =
  [ qtest ~count:200 "inverse (when it exists) multiplies to identity"
      QCheck2.Gen.(int_range 1 6 >>= square_matrix_gen)
      (fun m ->
        match Matrix.invert m with
        | inv ->
          Matrix.equal (Matrix.mul m inv) (Matrix.identity (Matrix.rows m))
          && Matrix.equal (Matrix.mul inv m)
               (Matrix.identity (Matrix.rows m))
        | exception Matrix.Singular -> Matrix.rank m < Matrix.rows m);
    qtest ~count:200 "solve satisfies the system"
      QCheck2.Gen.(
        int_range 1 6 >>= fun d ->
        pair (square_matrix_gen d) (array_size (return d) gf_gen))
      (fun (m, b) ->
        match Matrix.solve m b with
        | x -> Matrix.mul_vec m x = b
        | exception Matrix.Singular -> Matrix.rank m < Matrix.rows m);
    qtest ~count:100 "any k rows of a Vandermonde matrix are independent"
      QCheck2.Gen.(
        int_range 1 8 >>= fun k ->
        int_range k 24 >>= fun n ->
        (* a random k-subset of rows *)
        let* perm = shuffle_a (Array.init n (fun i -> i)) in
        return (n, k, Array.sub perm 0 k))
      (fun (n, k, rows) ->
        let v = Matrix.vandermonde ~rows:n ~cols:k in
        Matrix.rank (Matrix.select_rows v rows) = k);
    qtest ~count:200 "transpose involutive"
      QCheck2.Gen.(int_range 1 6 >>= square_matrix_gen)
      (fun m -> Matrix.equal m (Matrix.transpose (Matrix.transpose m)));
    Alcotest.test_case "identity properties" `Quick (fun () ->
        let i3 = Matrix.identity 3 in
        let m =
          Matrix.of_rows [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| 7; 8; 9 |] |]
        in
        Alcotest.(check bool) "I*m = m" true (Matrix.equal (Matrix.mul i3 m) m);
        Alcotest.(check bool) "m*I = m" true (Matrix.equal (Matrix.mul m i3) m));
    Alcotest.test_case "singular matrix raises" `Quick (fun () ->
        let m = Matrix.of_rows [| [| 1; 2 |]; [| 1; 2 |] |] in
        Alcotest.check_raises "invert" Matrix.Singular (fun () ->
            ignore (Matrix.invert m));
        Alcotest.(check int) "rank" 1 (Matrix.rank m));
    Alcotest.test_case "ragged input rejected" `Quick (fun () ->
        Alcotest.check_raises "ragged"
          (Invalid_argument "Matrix.of_rows: ragged") (fun () ->
            ignore (Matrix.of_rows [| [| 1 |]; [| 1; 2 |] |])));
    Alcotest.test_case "mul_vec agrees with mul" `Quick (fun () ->
        let m = Matrix.of_rows [| [| 1; 2 |]; [| 3; 4 |] |] in
        let v = [| 5; 6 |] in
        let as_col = Matrix.create ~rows:2 ~cols:1 (fun i _ -> v.(i)) in
        let prod = Matrix.mul m as_col in
        Alcotest.(check (array int))
          "agree"
          (Matrix.mul_vec m v)
          [| Matrix.get prod 0 0; Matrix.get prod 1 0 |])
  ]

(* ------------------------------------------------------------------ *)
(* GF(2^16) *)

module Gf16 = Galois.Gf16
module Matrix16 = Galois.Matrix16

let gf16_gen = QCheck2.Gen.int_range 0 65535
let gf16_nonzero_gen = QCheck2.Gen.int_range 1 65535

let gf16_tests =
  [ qtest "field axioms hold"
      QCheck2.Gen.(triple gf16_gen gf16_gen gf16_gen)
      (fun (a, b, c) ->
        Gf16.add a b = Gf16.add b a
        && Gf16.mul a b = Gf16.mul b a
        && Gf16.mul (Gf16.mul a b) c = Gf16.mul a (Gf16.mul b c)
        && Gf16.mul a (Gf16.add b c) = Gf16.add (Gf16.mul a b) (Gf16.mul a c)
        && Gf16.add a a = Gf16.zero
        && Gf16.mul a Gf16.one = a);
    qtest "mul matches reference mul_slow"
      QCheck2.Gen.(pair gf16_gen gf16_gen)
      (fun (a, b) -> Gf16.mul a b = Gf16.mul_slow a b);
    qtest "inverse and division" QCheck2.Gen.(pair gf16_gen gf16_nonzero_gen)
      (fun (a, b) ->
        Gf16.mul b (Gf16.inv b) = Gf16.one
        && Gf16.mul (Gf16.div a b) b = a);
    qtest "log/exp round-trip" gf16_nonzero_gen (fun a ->
        Gf16.alpha_pow (Gf16.log a) = a);
    qtest "pow adds exponents"
      QCheck2.Gen.(pair (int_range (-100_000) 100_000) (int_range (-100_000) 100_000))
      (fun (i, j) ->
        Gf16.mul (Gf16.alpha_pow i) (Gf16.alpha_pow j) = Gf16.alpha_pow (i + j));
    Alcotest.test_case "alpha has full order 65535" `Quick (fun () ->
        (* order divides 65535 = 3 * 5 * 17 * 257: checking the maximal
           proper divisors suffices *)
        List.iter
          (fun d ->
            Alcotest.(check bool)
              (Printf.sprintf "alpha^%d <> 1" d)
              false
              (Gf16.alpha_pow d = Gf16.one))
          [ 65535 / 3; 65535 / 5; 65535 / 17; 65535 / 257 ];
        Alcotest.(check int) "alpha^65535 = 1" Gf16.one (Gf16.alpha_pow 65535));
    Alcotest.test_case "edge cases" `Quick (fun () ->
        Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
            ignore (Gf16.inv 0));
        Alcotest.(check int) "0^0" 1 (Gf16.pow 0 0);
        Alcotest.(check bool) "of_int validates" true
          (match Gf16.of_int 70000 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    qtest ~count:100 "generic matrices invert over GF(2^16)"
      QCheck2.Gen.(
        int_range 1 5 >>= fun d ->
        array_size (return (d * d)) gf16_gen >|= fun a -> (d, a))
      (fun (d, a) ->
        let m = Matrix16.create ~rows:d ~cols:d (fun i j -> a.((i * d) + j)) in
        match Matrix16.invert m with
        | inv -> Matrix16.equal (Matrix16.mul m inv) (Matrix16.identity d)
        | exception Matrix16.Singular -> Matrix16.rank m < d);
    qtest ~count:50 "large Vandermonde row subsets stay independent"
      QCheck2.Gen.(
        int_range 1 6 >>= fun k ->
        int_range 256 1000 >>= fun n ->
        shuffle_a (Array.init n (fun i -> i)) >|= fun perm ->
        (n, k, Array.sub perm 0 k))
      (fun (n, k, rows) ->
        (* the whole point of GF(2^16): n beyond 255 *)
        let v = Matrix16.vandermonde ~rows:n ~cols:k in
        Matrix16.rank (Matrix16.select_rows v rows) = k)
  ]

let () =
  Alcotest.run "galois"
    [ ("field", field_tests); ("poly", poly_tests);
      ("interpolation", interpolation_tests); ("matrix", matrix_tests);
      ("gf16", gf16_tests)
    ]

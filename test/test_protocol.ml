(* Tests for the protocol substrate: tags, params, histories, cost
   accounting, probes, and — most importantly — the two atomicity
   checkers, including a cross-validation of the tag-based checker
   against the exhaustive value-based search on random histories. *)

module Tag = Protocol.Tag
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let tag_gen =
  QCheck2.Gen.(
    pair (int_range 0 5) (int_range (-1) 5) >|= fun (z, w) -> { Tag.z; w })

(* ------------------------------------------------------------------ *)
(* Tags *)

let tag_tests =
  [ qtest "total order: exactly one of <, =, >"
      QCheck2.Gen.(pair tag_gen tag_gen)
      (fun (a, b) ->
        let lt = Tag.( < ) a b and eq = Tag.equal a b and gt = Tag.( > ) a b in
        List.length (List.filter Fun.id [ lt; eq; gt ]) = 1);
    qtest "compare transitive"
      QCheck2.Gen.(triple tag_gen tag_gen tag_gen)
      (fun (a, b, c) ->
        if Tag.( <= ) a b && Tag.( <= ) b c then Tag.( <= ) a c else true);
    qtest "next is strictly larger" QCheck2.Gen.(pair tag_gen (int_range 0 9))
      (fun (t, w) -> Tag.( > ) (Tag.next t ~w) t);
    qtest "next tags of distinct writers differ"
      QCheck2.Gen.(triple tag_gen (int_range 0 4) (int_range 5 9))
      (fun (t, w1, w2) ->
        not (Tag.equal (Tag.next t ~w:w1) (Tag.next t ~w:w2)));
    qtest "max is an upper bound" QCheck2.Gen.(pair tag_gen tag_gen)
      (fun (a, b) ->
        let m = Tag.max a b in
        Tag.( >= ) m a && Tag.( >= ) m b && (Tag.equal m a || Tag.equal m b));
    Alcotest.test_case "initial is below every writer tag" `Quick (fun () ->
        Alcotest.(check bool) "below" true
          (Tag.( < ) Tag.initial (Tag.make ~z:0 ~w:0)));
    Alcotest.test_case "z ordering dominates writer id" `Quick (fun () ->
        Alcotest.(check bool) "dominates" true
          (Tag.( < ) (Tag.make ~z:1 ~w:99) (Tag.make ~z:2 ~w:0)))
  ]

(* ------------------------------------------------------------------ *)
(* Params *)

let params_tests =
  [ Alcotest.test_case "derived quantities" `Quick (fun () ->
        let p = Params.make ~n:10 ~f:3 ~e:1 () in
        Alcotest.(check int) "k_soda" 5 (Params.k_soda p);
        Alcotest.(check int) "k_cas" 4 (Params.k_cas p);
        Alcotest.(check int) "majority" 6 (Params.majority p);
        Alcotest.(check int) "cas quorum" 7 (Params.cas_quorum p);
        Alcotest.(check int) "fmax" 4 (Params.fmax ~n:10));
    Alcotest.test_case "fmax boundary accepted" `Quick (fun () ->
        let p = Params.make ~n:9 ~f:4 () in
        Alcotest.(check int) "k" 5 (Params.k_soda p));
    qtest ~count:100 "quorum intersection sizes"
      QCheck2.Gen.(
        int_range 3 60 >>= fun n ->
        int_range 0 (Params.fmax ~n) >|= fun f -> (n, f))
      (fun (n, f) ->
        let p = Params.make ~n ~f () in
        (* two majorities intersect; two CAS quorums intersect in >= k *)
        (2 * Params.majority p) - n >= 1
        && (2 * Params.cas_quorum p) - n >= Params.k_cas p);
    Alcotest.test_case "invalid params rejected" `Quick (fun () ->
        let invalid f =
          match f () with exception Invalid_argument _ -> true | _ -> false
        in
        Alcotest.(check bool) "f too large" true
          (invalid (fun () -> Params.make ~n:10 ~f:5 ()));
        Alcotest.(check bool) "e too large" true
          (invalid (fun () -> Params.make ~n:5 ~f:1 ~e:2 ()));
        Alcotest.(check bool) "no servers" true
          (invalid (fun () -> Params.make ~n:0 ~f:0 ())))
  ]

(* ------------------------------------------------------------------ *)
(* History *)

let history_tests =
  [ Alcotest.test_case "invoke / respond lifecycle" `Quick (fun () ->
        let h = History.create () in
        let op1 = History.invoke h ~client:7 ~kind:History.Write ~at:1.0 in
        let op2 = History.invoke h ~client:8 ~kind:History.Read ~at:2.0 in
        Alcotest.(check int) "dense ids" 1 op2;
        Alcotest.(check bool) "not complete" false (History.all_complete h);
        History.respond h ~op:op1 ~at:3.0;
        Alcotest.(check int) "one incomplete" 1
          (List.length (History.incomplete h));
        History.respond h ~op:op2 ~at:4.0;
        Alcotest.(check bool) "complete" true (History.all_complete h);
        Alcotest.(check int) "size" 2 (History.size h));
    Alcotest.test_case "double response rejected" `Quick (fun () ->
        let h = History.create () in
        let op = History.invoke h ~client:0 ~kind:History.Write ~at:0.0 in
        History.respond h ~op ~at:1.0;
        Alcotest.check_raises "double"
          (Invalid_argument "History.respond: op 0 twice") (fun () ->
            History.respond h ~op ~at:2.0));
    Alcotest.test_case "response before invocation rejected" `Quick (fun () ->
        let h = History.create () in
        let op = History.invoke h ~client:0 ~kind:History.Read ~at:5.0 in
        Alcotest.check_raises "early"
          (Invalid_argument "History.respond: response precedes invocation")
          (fun () -> History.respond h ~op ~at:4.0));
    Alcotest.test_case "records in invocation order" `Quick (fun () ->
        let h = History.create () in
        for i = 0 to 4 do
          ignore (History.invoke h ~client:i ~kind:History.Write ~at:(float_of_int i))
        done;
        Alcotest.(check (list int)) "order" [ 0; 1; 2; 3; 4 ]
          (List.map (fun r -> r.History.op) (History.records h)))
  ]

(* ------------------------------------------------------------------ *)
(* Cost *)

let cost_tests =
  [ Alcotest.test_case "communication attribution" `Quick (fun () ->
        let c = Cost.create ~value_len:100 in
        Cost.comm c ~op:0 ~bytes:100;
        Cost.comm c ~op:0 ~bytes:50;
        Cost.comm c ~op:1 ~bytes:25;
        Alcotest.(check (float 1e-9)) "op0" 1.5 (Cost.comm_of_op c ~op:0);
        Alcotest.(check (float 1e-9)) "op1" 0.25 (Cost.comm_of_op c ~op:1);
        Alcotest.(check (float 1e-9)) "total" 1.75 (Cost.total_comm c);
        Alcotest.(check int) "unknown op" 0 (Cost.comm_bytes_of_op c ~op:9));
    Alcotest.test_case "storage high-water mark" `Quick (fun () ->
        let c = Cost.create ~value_len:100 in
        Cost.storage_set c ~server:0 ~bytes:100;
        Cost.storage_set c ~server:1 ~bytes:100;
        Alcotest.(check (float 1e-9)) "current" 2.0 (Cost.current_total_storage c);
        Cost.storage_set c ~server:0 ~bytes:300;
        Cost.storage_set c ~server:1 ~bytes:0;
        Alcotest.(check (float 1e-9)) "current after" 3.0
          (Cost.current_total_storage c);
        (* the max was when both were loaded: 100 + 300 = 400 *)
        Alcotest.(check (float 1e-9)) "max" 4.0 (Cost.max_total_storage c));
    Alcotest.test_case "storage_add deltas" `Quick (fun () ->
        let c = Cost.create ~value_len:10 in
        Cost.storage_add c ~server:3 ~bytes:20;
        Cost.storage_add c ~server:3 ~bytes:(-5);
        Alcotest.(check int) "server" 15 (Cost.storage_of_server c ~server:3);
        Alcotest.check_raises "negative total"
          (Invalid_argument "Cost.storage_add: negative total") (fun () ->
            Cost.storage_add c ~server:3 ~bytes:(-100)));
    qtest ~count:100 "total equals sum over ops"
      QCheck2.Gen.(list_size (int_range 0 50) (pair (int_range 0 5) (int_range 0 1000)))
      (fun charges ->
        let c = Cost.create ~value_len:64 in
        List.iter (fun (op, bytes) -> Cost.comm c ~op ~bytes) charges;
        let by_op =
          List.init 6 (fun op -> Cost.comm_bytes_of_op c ~op)
          |> List.fold_left ( + ) 0
        in
        by_op = List.fold_left (fun acc (_, b) -> acc + b) 0 charges)
  ]

(* ------------------------------------------------------------------ *)
(* Probe *)

let probe_tests =
  [ Alcotest.test_case "registration window" `Quick (fun () ->
        let p = Probe.create () in
        Probe.emit p (Probe.Registered { rid = 0; server = 0; time = 1.0 });
        Probe.emit p (Probe.Registered { rid = 0; server = 1; time = 2.0 });
        Probe.emit p (Probe.Unregistered { rid = 0; server = 0; time = 5.0 });
        Probe.emit p (Probe.Unregistered { rid = 0; server = 1; time = 7.0 });
        Alcotest.(check (option (pair (float 0.) (float 0.)))) "window"
          (Some (1.0, 7.0))
          (Probe.registration_window p ~rid:0);
        Alcotest.(check (option (pair (float 0.) (float 0.)))) "unknown rid"
          None
          (Probe.registration_window p ~rid:9));
    Alcotest.test_case "open window is infinite unless server crashed" `Quick
      (fun () ->
        let p = Probe.create () in
        Probe.emit p (Probe.Registered { rid = 0; server = 0; time = 1.0 });
        Probe.emit p (Probe.Registered { rid = 0; server = 1; time = 2.0 });
        Probe.emit p (Probe.Unregistered { rid = 0; server = 0; time = 3.0 });
        (match Probe.registration_window p ~rid:0 with
        | Some (_, t2) -> Alcotest.(check bool) "infinite" true (t2 = infinity)
        | None -> Alcotest.fail "expected window");
        (match
           Probe.registration_window ~is_crashed:(fun s -> s = 1) p ~rid:0
         with
        | Some (t1, t2) ->
          Alcotest.(check (float 0.)) "t1" 1.0 t1;
          Alcotest.(check (float 0.)) "t2" 3.0 t2
        | None -> Alcotest.fail "expected window"));
    Alcotest.test_case "registrations_balanced" `Quick (fun () ->
        let p = Probe.create () in
        Probe.emit p (Probe.Registered { rid = 0; server = 0; time = 1.0 });
        Probe.emit p (Probe.Registered { rid = 0; server = 1; time = 1.0 });
        Probe.emit p (Probe.Unregistered { rid = 0; server = 0; time = 2.0 });
        Alcotest.(check bool) "unbalanced" false
          (Probe.registrations_balanced p ~crashed:(fun _ -> false));
        Alcotest.(check bool) "balanced if crashed" true
          (Probe.registrations_balanced p ~crashed:(fun s -> s = 1)));
    Alcotest.test_case "relays_of counts" `Quick (fun () ->
        let p = Probe.create () in
        let tag = Tag.make ~z:1 ~w:0 in
        Probe.emit p (Probe.Relayed { rid = 3; server = 0; tag; time = 1.0 });
        Probe.emit p (Probe.Relayed { rid = 3; server = 1; tag; time = 1.5 });
        Probe.emit p (Probe.Relayed { rid = 4; server = 0; tag; time = 2.0 });
        Alcotest.(check int) "rid 3" 2 (Probe.relays_of p ~rid:3);
        Alcotest.(check int) "rid 4" 1 (Probe.relays_of p ~rid:4))
  ]

(* ------------------------------------------------------------------ *)
(* Atomicity checkers *)

(* build a history record directly *)
let mk_op ~op ~kind ~inv ~res ~tag ~value : History.record =
  { History.op;
    client = op;
    kind;
    invoked_at = inv;
    responded_at = res;
    tag;
    value = Option.map Bytes.of_string value
  }

let w_op op ~inv ~res ~z ~w ~value =
  mk_op ~op ~kind:History.Write ~inv ~res:(Some res)
    ~tag:(Some (Tag.make ~z ~w)) ~value:(Some value)

let r_op op ~inv ~res ~tag ~value =
  mk_op ~op ~kind:History.Read ~inv ~res:(Some res) ~tag:(Some tag)
    ~value:(Some value)

let checker_tests =
  [ Alcotest.test_case "accepts a clean sequential history" `Quick (fun () ->
        let records =
          [ w_op 0 ~inv:0. ~res:1. ~z:1 ~w:100 ~value:"a";
            r_op 1 ~inv:2. ~res:3. ~tag:(Tag.make ~z:1 ~w:100) ~value:"a";
            w_op 2 ~inv:4. ~res:5. ~z:2 ~w:100 ~value:"b";
            r_op 3 ~inv:6. ~res:7. ~tag:(Tag.make ~z:2 ~w:100) ~value:"b"
          ]
        in
        Alcotest.(check bool) "tagged ok" true
          (Atomicity.check_tagged records = Ok ());
        Alcotest.(check bool) "value ok" true
          (Atomicity.linearizable_by_value ~initial_value:Bytes.empty records));
    Alcotest.test_case "read of the initial value" `Quick (fun () ->
        let records =
          [ r_op 0 ~inv:0. ~res:1. ~tag:Tag.initial ~value:"init" ]
        in
        Alcotest.(check bool) "ok" true
          (Atomicity.check_tagged ~initial_value:(Bytes.of_string "init")
             records
          = Ok ());
        Alcotest.(check bool) "value checker ok" true
          (Atomicity.linearizable_by_value
             ~initial_value:(Bytes.of_string "init") records));
    Alcotest.test_case "rejects a stale read (new-old inversion)" `Quick
      (fun () ->
        (* write b completes, then a later read returns the older tag *)
        let records =
          [ w_op 0 ~inv:0. ~res:1. ~z:1 ~w:100 ~value:"a";
            w_op 1 ~inv:2. ~res:3. ~z:2 ~w:100 ~value:"b";
            r_op 2 ~inv:4. ~res:5. ~tag:(Tag.make ~z:1 ~w:100) ~value:"a"
          ]
        in
        Alcotest.(check bool) "tagged rejects" true
          (Result.is_error (Atomicity.check_tagged records));
        Alcotest.(check bool) "value rejects" false
          (Atomicity.linearizable_by_value ~initial_value:Bytes.empty records));
    Alcotest.test_case "rejects read ordered before its write" `Quick
      (fun () ->
        (* read completes before the write with its tag even starts *)
        let records =
          [ r_op 0 ~inv:0. ~res:1. ~tag:(Tag.make ~z:1 ~w:100) ~value:"a";
            w_op 1 ~inv:2. ~res:3. ~z:1 ~w:100 ~value:"a"
          ]
        in
        Alcotest.(check bool) "tagged rejects" true
          (Result.is_error (Atomicity.check_tagged records));
        Alcotest.(check bool) "value rejects" false
          (Atomicity.linearizable_by_value ~initial_value:Bytes.empty records));
    Alcotest.test_case "rejects value mismatch (P3)" `Quick (fun () ->
        let records =
          [ w_op 0 ~inv:0. ~res:1. ~z:1 ~w:100 ~value:"a";
            r_op 1 ~inv:2. ~res:3. ~tag:(Tag.make ~z:1 ~w:100) ~value:"WRONG"
          ]
        in
        Alcotest.(check bool) "tagged rejects" true
          (Result.is_error (Atomicity.check_tagged records)));
    Alcotest.test_case "rejects duplicate write tags (P2)" `Quick (fun () ->
        let records =
          [ w_op 0 ~inv:0. ~res:1. ~z:1 ~w:100 ~value:"a";
            w_op 1 ~inv:2. ~res:3. ~z:1 ~w:100 ~value:"b"
          ]
        in
        Alcotest.(check bool) "tagged rejects" true
          (Result.is_error (Atomicity.check_tagged records)));
    Alcotest.test_case "rejects tag that nobody wrote" `Quick (fun () ->
        let records =
          [ r_op 0 ~inv:0. ~res:1. ~tag:(Tag.make ~z:7 ~w:3) ~value:"x" ]
        in
        Alcotest.(check bool) "tagged rejects" true
          (Result.is_error (Atomicity.check_tagged records)));
    Alcotest.test_case "accepts concurrent reads around a write" `Quick
      (fun () ->
        (* two reads concurrent with a write may return old and new *)
        let records =
          [ w_op 0 ~inv:0. ~res:10. ~z:1 ~w:100 ~value:"a";
            r_op 1 ~inv:1. ~res:9. ~tag:Tag.initial ~value:"";
            r_op 2 ~inv:2. ~res:8. ~tag:(Tag.make ~z:1 ~w:100) ~value:"a"
          ]
        in
        Alcotest.(check bool) "tagged ok" true
          (Atomicity.check_tagged records = Ok ());
        Alcotest.(check bool) "value ok" true
          (Atomicity.linearizable_by_value ~initial_value:Bytes.empty records));
    Alcotest.test_case "read may return an incomplete write's tag" `Quick
      (fun () ->
        let pending_write =
          mk_op ~op:0 ~kind:History.Write ~inv:0. ~res:None
            ~tag:(Some (Tag.make ~z:1 ~w:100))
            ~value:(Some "a")
        in
        let records =
          [ pending_write;
            r_op 1 ~inv:1. ~res:2. ~tag:(Tag.make ~z:1 ~w:100) ~value:"a"
          ]
        in
        Alcotest.(check bool) "tagged ok" true
          (Atomicity.check_tagged records = Ok ()));
    Alcotest.test_case "incomplete op lacking a tag is ignored" `Quick
      (fun () ->
        let pending =
          mk_op ~op:0 ~kind:History.Write ~inv:0. ~res:None ~tag:None
            ~value:None
        in
        Alcotest.(check bool) "ok" true
          (Atomicity.check_tagged [ pending ] = Ok ()));
    (* Cross-validation: on random tag-consistent histories, the tagged
       checker and the exhaustive value checker agree that valid
       histories are valid; and mutated histories rejected by the tag
       checker are (when the mutation breaks semantics, not just tags)
       rejected by the search too. Here we validate agreement on
       well-formed histories generated by simulating a sequentially
       consistent register with random overlap. *)
    qtest ~count:200 "tag-valid random histories pass both checkers"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let rng = Simnet.Rng.create seed in
        (* build a random linearization first, then give ops random
           intervals consistent with that order *)
        let nops = Simnet.Rng.int_in rng 1 10 in
        let time = ref 0.0 in
        let last_write = ref None in
        let zc = ref 0 in
        let records =
          List.init nops (fun op ->
              let start = !time +. Simnet.Rng.float rng 1.0 in
              let finish = start +. Simnet.Rng.float rng 1.0 in
              time := finish;
              if Simnet.Rng.bool rng then begin
                incr zc;
                let tag = Tag.make ~z:!zc ~w:(100 + op) in
                let value = Printf.sprintf "v%d" op in
                last_write := Some (tag, value);
                w_op op ~inv:start ~res:finish ~z:tag.Tag.z ~w:tag.Tag.w ~value
              end
              else
                match !last_write with
                | None -> r_op op ~inv:start ~res:finish ~tag:Tag.initial ~value:""
                | Some (tag, value) -> r_op op ~inv:start ~res:finish ~tag ~value)
        in
        Atomicity.check_tagged records = Ok ()
        && Atomicity.linearizable_by_value ~initial_value:Bytes.empty records);
    (* Differential test of the O(m log m) P1 plane sweep against the
       original O(m^2) pairwise scan it replaced. Histories have fully
       random (overlapping) intervals; write tags are unique and read
       values match their tags, so the verdict is decided by P1 alone —
       roughly half the generated histories violate it. The two
       checkers must agree on the verdict (the culprit pair they report
       may legitimately differ). *)
    qtest ~count:500 "P1 sweep agrees with the quadratic oracle"
      QCheck2.Gen.(int_range 0 1_000_000)
      (fun seed ->
        let rng = Simnet.Rng.create seed in
        let nops = Simnet.Rng.int_in rng 1 14 in
        let is_write = Array.init nops (fun _ -> Simnet.Rng.bool rng) in
        let nw = Array.fold_left (fun a b -> if b then a + 1 else a) 0 is_write in
        let zc = ref 0 in
        let records =
          List.init nops (fun op ->
              let inv = Simnet.Rng.float rng 20.0 in
              let res = inv +. Simnet.Rng.float rng 4.0 in
              if is_write.(op) then begin
                incr zc;
                w_op op ~inv ~res ~z:!zc ~w:100
                  ~value:(Printf.sprintf "v%d" !zc)
              end
              else
                let z = Simnet.Rng.int rng (nw + 1) in
                if z = 0 then r_op op ~inv ~res ~tag:Tag.initial ~value:""
                else
                  r_op op ~inv ~res ~tag:(Tag.make ~z ~w:100)
                    ~value:(Printf.sprintf "v%d" z))
        in
        Result.is_ok (Atomicity.check_tagged records)
        = Result.is_ok (Atomicity.check_tagged_quadratic records))
  ]

let () =
  Alcotest.run "protocol"
    [ ("tag", tag_tests);
      ("params", params_tests);
      ("history", history_tests);
      ("cost", cost_tests);
      ("probe", probe_tests);
      ("atomicity", checker_tests)
    ]

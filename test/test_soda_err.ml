(* Tests for SODAerr (Section VI): correctness despite silently
   corrupted local disk reads at up to e servers, combined with up to f
   crashes; the k = n - f - 2e code dimension; the k + 2e decode and
   unregistration thresholds; and the storage/cost claims of Thm 6.3. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let accept (r : Runner.result) =
  History.all_complete r.Runner.history
  && Atomicity.check_tagged ~initial_value:r.Runner.initial_value
       (History.records r.Runner.history)
     = Ok ()

(* params with e > 0 and room for it: n - f - 2e >= 1 *)
let err_params_gen =
  QCheck2.Gen.(
    int_range 5 16 >>= fun n ->
    int_range 1 (Params.fmax ~n) >>= fun f ->
    let emax = (n - f - 1) / 2 in
    int_range 1 (max 1 emax) >|= fun e ->
    if n - f - (2 * e) < 1 then Params.make ~n ~f ~e:1 ()
    else Params.make ~n ~f ~e ())

(* pick e distinct error-prone coordinates *)
let error_coords_gen params =
  QCheck2.Gen.(
    shuffle_a (Array.init (Params.n params) (fun i -> i)) >|= fun perm ->
    Array.to_list (Array.sub perm 0 (Params.e params)))

let basic_tests =
  [ Alcotest.test_case "read decodes through e corrupt servers" `Quick
      (fun () ->
        let params = Params.make ~n:10 ~f:2 ~e:2 () in
        let engine = Engine.create ~seed:5 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 128 'i') ~error_prone:[ 1; 6 ]
            ~num_writers:1 ~num_readers:1 ()
        in
        let written = Bytes.of_string "survives silent disk corruption" in
        let result = ref None in
        Soda.Deployment.write d ~writer:0 ~at:0.0 written;
        Soda.Deployment.read d ~reader:0 ~at:50.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        (match !result with
        | Some v -> Alcotest.(check bool) "value" true (Bytes.equal v written)
        | None -> Alcotest.fail "read did not complete"));
    Alcotest.test_case "initial value survives corrupt reads too" `Quick
      (fun () ->
        let params = Params.make ~n:8 ~f:1 ~e:1 () in
        let engine = Engine.create ~seed:9 ~delay:(Delay.constant 1.0) () in
        let initial_value = Bytes.of_string "genesis block" in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value
            ~error_prone:[ 0 ] ~num_writers:1 ~num_readers:1 ()
        in
        let result = ref None in
        Soda.Deployment.read d ~reader:0 ~at:0.0
          ~on_done:(fun v -> result := Some v)
          ();
        Engine.run engine;
        (match !result with
        | Some v ->
          Alcotest.(check bool) "value" true (Bytes.equal v initial_value)
        | None -> Alcotest.fail "read did not complete"));
    Alcotest.test_case "code dimension and thresholds follow Section VI"
      `Quick (fun () ->
        let params = Params.make ~n:12 ~f:3 ~e:2 () in
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let d =
          Soda.Deployment.deploy ~engine ~params ~num_writers:1 ~num_readers:1
            ()
        in
        let config = Soda.Deployment.config d in
        Alcotest.(check int) "k = n - f - 2e" 5
          (Erasure.Mds.k config.Soda.Config.code);
        Alcotest.(check int) "threshold = k + 2e" 9
          config.Soda.Config.decode_threshold;
        Alcotest.(check string) "BCH codec" "rs-bch[12,5]"
          (Erasure.Mds.name config.Soda.Config.code));
    Alcotest.test_case "more error-prone servers than e is rejected" `Quick
      (fun () ->
        let params = Params.make ~n:10 ~f:2 ~e:1 () in
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        Alcotest.(check bool) "rejected" true
          (match
             Soda.Deployment.deploy ~engine ~params ~error_prone:[ 0; 1 ]
               ~num_writers:1 ~num_readers:1 ()
           with
          | _ -> false
          | exception Invalid_argument _ -> true))
  ]

let random_tests =
  [ qtest ~count:50 "liveness + atomicity with e corrupt disks (Thm 6.1, 6.2)"
      QCheck2.Gen.(
        err_params_gen >>= fun params ->
        error_coords_gen params >>= fun coords ->
        int_range 0 100_000 >|= fun seed -> (params, coords, seed))
      (fun (params, coords, seed) ->
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2
            ~delay:(Delay.uniform ~lo:0.2 ~hi:2.5) ()
        in
        let w = Workload.with_errors w coords in
        accept (Runner.run Runner.Soda w));
    qtest ~count:40 "liveness + atomicity with e corrupt disks AND f crashes"
      QCheck2.Gen.(
        err_params_gen >>= fun params ->
        error_coords_gen params >>= fun coords ->
        int_range 0 100_000 >>= fun seed ->
        shuffle_a (Array.init (Params.n params) (fun i -> i)) >>= fun perm ->
        list_size
          (return (Params.f params))
          (float_range 0.0 400.0)
        >|= fun times ->
        (params, coords, seed, List.mapi (fun i t -> (perm.(i), t)) times))
      (fun (params, coords, seed, crashes) ->
        let w =
          Workload.concurrent ~params ~value_len:128 ~seed ~num_writers:2
            ~num_readers:2 ~ops_per_client:2
            ~delay:(Delay.uniform ~lo:0.2 ~hi:2.5) ()
        in
        let w = Workload.with_errors (Workload.with_crashes w crashes) coords in
        accept (Runner.run Runner.Soda w));
    qtest ~count:30 "returned values are never corrupted"
      QCheck2.Gen.(
        err_params_gen >>= fun params ->
        error_coords_gen params >>= fun coords ->
        int_range 0 100_000 >|= fun seed -> (params, coords, seed))
      (fun (params, coords, seed) ->
        (* P3 of the tag checker already compares read values against
           writes; this asserts it directly for clarity *)
        let w =
          Workload.concurrent ~params ~value_len:256 ~seed ~num_writers:1
            ~num_readers:2 ~ops_per_client:2 ()
        in
        let w = Workload.with_errors w coords in
        let r = Runner.run Runner.Soda w in
        let records = History.records r.Runner.history in
        let value_of_tag tag =
          if Protocol.Tag.equal tag Protocol.Tag.initial then
            Some r.Runner.initial_value
          else
            List.find_map
              (fun o ->
                if o.History.kind = History.Write && o.History.tag = Some tag
                then o.History.value
                else None)
              records
        in
        List.for_all
          (fun o ->
            o.History.kind = History.Write
            ||
            match (o.History.tag, o.History.value) with
            | Some tag, Some v -> (
              match value_of_tag tag with
              | Some written -> Bytes.equal v written
              | None -> false)
            | _ -> o.History.responded_at = None)
          records)
  ]

let cost_tests =
  [ qtest ~count:30 "Thm 6.3(i): storage is exactly n/(n-f-2e) fragments"
      QCheck2.Gen.(
        err_params_gen >>= fun params ->
        int_range 0 10_000 >|= fun seed -> (params, seed))
      (fun (params, seed) ->
        let w =
          Workload.sequential ~params ~value_len:512 ~seed ~rounds:2 ()
        in
        let r = Runner.run Runner.Soda w in
        let n = Params.n params and k = Params.k_soda params in
        let frag = Erasure.Splitter.fragment_size ~k ~value_len:512 in
        let expected = float_of_int (n * frag) /. 512.0 in
        abs_float (Cost.max_total_storage r.Runner.cost -. expected) < 1e-9);
    qtest ~count:30 "Thm 6.3(ii): write cost stays below 5 f^2"
      QCheck2.Gen.(
        int_range 2 10 >>= fun f ->
        int_range (2 * f + 3) 24 >>= fun n ->
        int_range 0 10_000 >|= fun seed -> (n, f, seed))
      (fun (n, f, seed) ->
        let params = Params.make ~n ~f ~e:1 () in
        let w = Workload.sequential ~params ~value_len:2048 ~seed ~rounds:2 () in
        let r = Runner.run Runner.Soda w in
        let bound = 5.0 *. float_of_int (f * f) in
        History.records r.Runner.history
        |> List.filter (fun o -> o.History.kind = History.Write)
        |> List.for_all (fun o ->
               Cost.comm_of_op r.Runner.cost ~op:o.History.op <= bound));
    qtest ~count:30
      "Thm 6.3(iii): quiescent read cost between k+2e and n elements"
      QCheck2.Gen.(
        err_params_gen >>= fun params ->
        error_coords_gen params >>= fun coords ->
        int_range 0 10_000 >|= fun seed -> (params, coords, seed))
      (fun (params, coords, seed) ->
        (* n/(n-f-2e) is the worst case; a reordered READ-COMPLETE can
           spare some servers their relay, but never below the k + 2e
           the reader needs to decode *)
        let w = Workload.sequential ~params ~value_len:512 ~seed ~rounds:2 () in
        let w = Workload.with_errors w coords in
        let r = Runner.run Runner.Soda w in
        let n = Params.n params
        and k = Params.k_soda params
        and e = Params.e params in
        let frag = Erasure.Splitter.fragment_size ~k ~value_len:512 in
        let unit = float_of_int frag /. 512.0 in
        History.records r.Runner.history
        |> List.filter (fun o -> o.History.kind = History.Read)
        |> List.for_all (fun o ->
               let c = Cost.comm_of_op r.Runner.cost ~op:o.History.op in
               c >= (float_of_int (k + (2 * e)) *. unit) -. 1e-9
               && c <= (float_of_int n *. unit) +. 1e-9))
  ]

let threshold_tests =
  [ Alcotest.test_case
      "with only k + 2e - 1 live servers the read cannot finish; with k + 2e \
       it can"
      `Quick (fun () ->
        let params = Params.make ~n:10 ~f:2 ~e:1 () in
        (* k = 6, threshold 8 *)
        let run ~alive =
          let engine = Engine.create ~seed:3 ~delay:(Delay.constant 1.0) () in
          let d =
            Soda.Deployment.deploy ~engine ~params
              ~initial_value:(Bytes.make 64 'i') ~num_writers:1 ~num_readers:1
              ()
          in
          (* crash everything beyond [alive] coordinates *)
          for c = alive to 9 do
            Soda.Deployment.crash_server d ~coordinate:c ~at:0.0
          done;
          let result = ref None in
          Soda.Deployment.read d ~reader:0 ~at:1.0
            ~on_done:(fun v -> result := Some v)
            ();
          Engine.run engine;
          !result
        in
        Alcotest.(check bool) "k+2e-1 insufficient" true (run ~alive:7 = None);
        Alcotest.(check bool) "k+2e sufficient" true (run ~alive:8 <> None));
    qtest ~count:30 "unregistration waits for k + 2e announcements"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:9 ~f:1 ~e:1 () in
        let w =
          Workload.sequential ~params ~value_len:128 ~seed ~rounds:2 ()
        in
        let r = Runner.run Runner.Soda w in
        (* every read must have been relayed at least k + 2e elements *)
        let probe = Option.get r.Runner.probe in
        History.records r.Runner.history
        |> List.filter (fun o -> o.History.kind = History.Read)
        |> List.for_all (fun o ->
               Probe.relays_of probe ~rid:o.History.op
               >= Params.k_soda params + (2 * Params.e params)))
  ]

(* Timed error-prone windows: instead of the static always-corrupting
   model, each error-prone coordinate garbles local reads only inside a
   sim-time window ([Deployment.set_error_window]) — the transient-fault
   picture of a disk that goes bad and is later replaced. A window can
   only remove corruption relative to the static model, so Thms 6.1/6.2
   must keep holding, here under 20% message loss on every link. *)
let timed_window_tests =
  [ qtest ~count:30 "timed error windows under 20% loss stay live + atomic"
      QCheck2.Gen.(
        err_params_gen >>= fun params ->
        error_coords_gen params >>= fun coords ->
        float_range 0.0 150.0 >>= fun wstart ->
        float_range 20.0 200.0 >>= fun wlen ->
        int_range 0 100_000 >|= fun seed -> (params, coords, wstart, wlen, seed))
      (fun (params, coords, wstart, wlen, seed) ->
        let engine =
          Engine.create ~seed ~transport:(`Reliable Simnet.Channel.default)
            ~classify:(fun m -> Soda.Messages.data_bytes m > 0)
            ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        Engine.set_loss engine 0.2;
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make 128 'i') ~error_prone:coords
            ~num_writers:1 ~num_readers:1 ()
        in
        List.iter
          (fun c ->
            Soda.Deployment.set_error_window d ~coordinate:c
              (Some (wstart, wstart +. wlen)))
          coords;
        (* closed loop: loss can stall any one operation, and clients
           are single-lane *)
        let ops = 3 in
        let rec wloop i () =
          if i < ops then
            Soda.Deployment.write d ~writer:0
              ~at:(Engine.now engine +. 20.0)
              ~on_done:(wloop (i + 1))
              (Workload.value ~len:128 ~seed ~index:i)
        in
        let rec rloop i () =
          if i < ops then
            Soda.Deployment.read d ~reader:0
              ~at:(Engine.now engine +. 25.0)
              ~on_done:(fun _ -> rloop (i + 1) ())
              ()
        in
        wloop 0 ();
        rloop 0 ();
        Engine.run engine;
        let history = Soda.Deployment.history d in
        History.all_complete history
        && Atomicity.check_tagged
             ~initial_value:(Soda.Deployment.initial_value d)
             (History.records history)
           = Ok ())
  ]

let () =
  Alcotest.run "soda-err"
    [ ("basics", basic_tests);
      ("random-executions", random_tests);
      ("costs", cost_tests);
      ("thresholds", threshold_tests);
      ("timed-windows", timed_window_tests)
    ]

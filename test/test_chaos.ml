(* Chaos tests: randomized crash/repair schedules (Nemesis) under the
   f-at-a-time budget, with live client traffic throughout. SODA plus
   the repair extension must deliver liveness and atomicity through all
   of it. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Atomicity = Protocol.Atomicity
module Workload = Harness.Workload
module Nemesis = Harness.Nemesis

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let nemesis_unit_tests =
  [ qtest ~count:200 "schedules never exceed the crash budget"
      QCheck2.Gen.(
        int_range 3 15 >>= fun n ->
        int_range 1 (Params.fmax ~n) >>= fun f ->
        int_range 0 100_000 >|= fun seed -> (n, f, seed))
      (fun (n, f, seed) ->
        let params = Params.make ~n ~f () in
        let schedule = Nemesis.generate ~params ~seed ~horizon:2000.0 () in
        Nemesis.max_simultaneous_down schedule <= f);
    qtest ~count:100 "every crash is followed by its repair"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:9 ~f:3 () in
        let schedule = Nemesis.generate ~params ~seed ~horizon:2000.0 () in
        (* scanning forward, a coordinate can only crash when up and
           repair when down *)
        let down = Hashtbl.create 8 in
        List.for_all
          (fun e ->
            match e with
            | Nemesis.Crash { coordinate; _ } ->
              if Hashtbl.mem down coordinate then false
              else begin
                Hashtbl.add down coordinate ();
                true
              end
            | Nemesis.Repair { coordinate; _ } ->
              if Hashtbl.mem down coordinate then begin
                Hashtbl.remove down coordinate;
                true
              end
              else false)
          schedule);
    Alcotest.test_case "schedules are non-trivial" `Quick (fun () ->
        let params = Params.make ~n:9 ~f:3 () in
        let schedule = Nemesis.generate ~params ~seed:5 ~horizon:3000.0 () in
        Alcotest.(check bool)
          (Printf.sprintf "%d crashes" (Nemesis.crash_count schedule))
          true
          (Nemesis.crash_count schedule >= 3))
  ]

let run_chaos ~seed =
  let params = Params.make ~n:7 ~f:2 () in
  let initial_value = Workload.value ~len:128 ~seed ~index:999 in
  let engine = Engine.create ~seed ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) () in
  let d =
    Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:2
      ~num_readers:2 ()
  in
  let horizon = 2400.0 in
  let schedule = Nemesis.generate ~params ~seed ~horizon () in
  Nemesis.apply schedule d;
  (* steady client traffic across the whole horizon, closed-loop: a
     client issues its next operation only after the previous one
     completed, since chaos can stall a single operation arbitrarily
     (e.g. while several servers are simultaneously mid-repair) *)
  let value_index = ref 0 in
  let rec write_loop w () =
    if Engine.now engine < horizon then begin
      let index = !value_index in
      incr value_index;
      Soda.Deployment.write d ~writer:w
        ~at:(Engine.now engine +. 45.0)
        ~on_done:(write_loop w)
        (Workload.value ~len:128 ~seed ~index)
    end
  in
  let rec read_loop r () =
    if Engine.now engine < horizon then
      Soda.Deployment.read d ~reader:r
        ~at:(Engine.now engine +. 45.0)
        ~on_done:(fun _ -> read_loop r ())
        ()
  in
  write_loop 0 ();
  write_loop 1 ();
  read_loop 0 ();
  read_loop 1 ();
  Engine.run engine;
  (d, initial_value, schedule)

let chaos_tests =
  [ qtest ~count:25 "liveness + atomicity through random crash/repair storms"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let d, initial_value, _ = run_chaos ~seed in
        History.all_complete (Soda.Deployment.history d)
        && Atomicity.check_tagged ~initial_value
             (History.records (Soda.Deployment.history d))
           = Ok ());
    Alcotest.test_case "a chaotic run exercises real faults" `Quick (fun () ->
        let _, _, schedule = run_chaos ~seed:11 in
        Alcotest.(check bool)
          (Printf.sprintf "crashes=%d" (Nemesis.crash_count schedule))
          true
          (Nemesis.crash_count schedule >= 2))
  ]

let store_chaos_tests =
  [ qtest ~count:15 "multi-object store survives machine-level chaos"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:6 ~f:2 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let objects = [ "a"; "b" ] in
        let store =
          Soda.Store.create ~engine ~params ~objects ~num_writers:2
            ~num_readers:2 ()
        in
        (* machine-level nemesis: crash/repair cycles hit every object's
           processes on that machine together *)
        let schedule =
          Nemesis.generate ~params ~seed:(seed + 1) ~horizon:1200.0 ()
        in
        List.iter
          (function
            | Nemesis.Crash { coordinate; at } ->
              Soda.Store.crash_server store ~coordinate ~at
            | Nemesis.Repair { coordinate; at } ->
              Soda.Store.repair_server store ~coordinate ~at)
          schedule;
        (* under chaos an operation can stall until a repair completes,
           so clients chain their next operation from the completion
           callback instead of fixed timestamps (closed loop) *)
        List.iteri
          (fun i obj ->
            let rec write_loop w j () =
              if j < 3 then
                Soda.Store.write store ~obj ~writer:w
                  ~at:(Engine.now engine +. 30.0)
                  ~on_done:(write_loop w (j + 1))
                  (Workload.value ~len:64 ~seed ~index:((100 * i) + (10 * w) + j))
            in
            let rec read_loop r j () =
              if j < 3 then
                Soda.Store.read store ~obj ~reader:r
                  ~at:(Engine.now engine +. 40.0)
                  ~on_done:(fun _ -> read_loop r (j + 1) ())
                  ()
            in
            write_loop 0 0 ();
            write_loop 1 0 ();
            read_loop 0 0 ();
            read_loop 1 0 ())
          objects;
        Engine.run engine;
        Soda.Store.all_complete store
        && Soda.Store.check_atomicity store = Ok ())
  ]

let () =
  Alcotest.run "chaos"
    [ ("nemesis", nemesis_unit_tests);
      ("chaos-runs", chaos_tests);
      ("store-chaos", store_chaos_tests)
    ]

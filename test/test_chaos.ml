(* Chaos tests: randomized crash/repair schedules (Nemesis) under the
   f-at-a-time budget, with live client traffic throughout. SODA plus
   the repair extension must deliver liveness and atomicity through all
   of it.

   The crash-storm runs mount the reliable-channel transport: with
   crash-REPAIR cycles (as opposed to the paper's permanent crashes) a
   raw channel loses every message sent into a crash window forever, so
   an operation straddling two windows can be left short of its quorum
   with no retransmission to save it — liveness under repair genuinely
   requires the ack/retransmit substrate (or synchronous detectors the
   model doesn't have). The fault budget still holds at every instant;
   the channel only rides messages across the windows. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Atomicity = Protocol.Atomicity
module Workload = Harness.Workload
module Nemesis = Harness.Nemesis
module Chaos = Harness.Chaos

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let nemesis_unit_tests =
  [ qtest ~count:200 "schedules never exceed the crash budget"
      QCheck2.Gen.(
        int_range 3 15 >>= fun n ->
        int_range 1 (Params.fmax ~n) >>= fun f ->
        int_range 0 100_000 >|= fun seed -> (n, f, seed))
      (fun (n, f, seed) ->
        let params = Params.make ~n ~f () in
        let schedule = Nemesis.generate ~params ~seed ~horizon:2000.0 () in
        Nemesis.max_simultaneous_down schedule <= f);
    qtest ~count:100 "every crash is followed by its repair"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:9 ~f:3 () in
        let schedule = Nemesis.generate ~params ~seed ~horizon:2000.0 () in
        (* scanning forward, a coordinate can only crash when up and
           repair when down *)
        let down = Hashtbl.create 8 in
        List.for_all
          (fun e ->
            match e with
            | Nemesis.Crash { coordinate; _ } ->
              if Hashtbl.mem down coordinate then false
              else begin
                Hashtbl.add down coordinate ();
                true
              end
            | Nemesis.Repair { coordinate; _ } ->
              if Hashtbl.mem down coordinate then begin
                Hashtbl.remove down coordinate;
                true
              end
              else false
            | Nemesis.Partition _ | Nemesis.Heal _ | Nemesis.BitRot _ ->
              (* [generate] never emits partitions or rot *)
              false)
          schedule);
    Alcotest.test_case "schedules are non-trivial" `Quick (fun () ->
        let params = Params.make ~n:9 ~f:3 () in
        let schedule = Nemesis.generate ~params ~seed:5 ~horizon:3000.0 () in
        Alcotest.(check bool)
          (Printf.sprintf "%d crashes" (Nemesis.crash_count schedule))
          true
          (Nemesis.crash_count schedule >= 3));
    qtest ~count:200
      "mixed schedules never exceed the budget (crashed + isolated)"
      QCheck2.Gen.(
        int_range 3 15 >>= fun n ->
        int_range 1 (Params.fmax ~n) >>= fun f ->
        float_range 0.0 1.0 >>= fun fraction ->
        int_range 0 100_000 >|= fun seed -> (n, f, fraction, seed))
      (fun (n, f, fraction, seed) ->
        let params = Params.make ~n ~f () in
        let schedule =
          Nemesis.generate_mixed ~params ~seed ~horizon:2000.0
            ~partition_fraction:fraction ()
        in
        Nemesis.max_simultaneous_down schedule <= f);
    qtest ~count:100 "mixed schedules pair partitions with heals"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:9 ~f:3 () in
        let schedule =
          Nemesis.generate_mixed ~params ~seed ~horizon:2000.0 ()
        in
        (* per coordinate: Partition only when not isolated, Heal only
           when isolated, Crash/Repair as before *)
        let down = Hashtbl.create 8 in
        let isolated = Hashtbl.create 8 in
        let flip table cs ~expect =
          List.for_all
            (fun c ->
              if Hashtbl.mem table c = expect then begin
                if expect then Hashtbl.remove table c
                else Hashtbl.add table c ();
                true
              end
              else false)
            cs
        in
        List.for_all
          (fun e ->
            match e with
            | Nemesis.Crash { coordinate; _ } ->
              flip down [ coordinate ] ~expect:false
            | Nemesis.Repair { coordinate; _ } ->
              flip down [ coordinate ] ~expect:true
            | Nemesis.Partition { coordinates; _ } ->
              flip isolated coordinates ~expect:false
            | Nemesis.Heal { coordinates; _ } ->
              flip isolated coordinates ~expect:true
            | Nemesis.BitRot _ ->
              (* [generate_mixed] never emits rot *)
              false)
          schedule);
    Alcotest.test_case "mixed schedules mix both fault kinds" `Quick
      (fun () ->
        let params = Params.make ~n:9 ~f:3 () in
        let found = ref (false, false) in
        (* the coin is per-window, so scan a few seeds *)
        List.iter
          (fun seed ->
            let s = Nemesis.generate_mixed ~params ~seed ~horizon:3000.0 () in
            let c, p = !found in
            found :=
              (c || Nemesis.crash_count s > 0, p || Nemesis.partition_count s > 0))
          [ 1; 2; 3 ];
        Alcotest.(check (pair bool bool)) "crashes and partitions" (true, true)
          !found)
  ]

let run_chaos ~seed =
  let params = Params.make ~n:7 ~f:2 () in
  let initial_value = Workload.value ~len:128 ~seed ~index:999 in
  let engine =
    Engine.create ~seed ~transport:(`Reliable Simnet.Channel.default)
      ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
  in
  let d =
    Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:2
      ~num_readers:2 ()
  in
  let horizon = 2400.0 in
  let schedule = Nemesis.generate ~params ~seed ~horizon () in
  (* gated: a crash waits for in-flight repairs, keeping the effective
     fault count (crashed + still-rebuilding) within the f budget *)
  Nemesis.apply_gated schedule d;
  (* steady client traffic across the whole horizon, closed-loop: a
     client issues its next operation only after the previous one
     completed, since chaos can stall a single operation arbitrarily
     (e.g. while several servers are simultaneously mid-repair) *)
  let value_index = ref 0 in
  let rec write_loop w () =
    if Engine.now engine < horizon then begin
      let index = !value_index in
      incr value_index;
      Soda.Deployment.write d ~writer:w
        ~at:(Engine.now engine +. 45.0)
        ~on_done:(write_loop w)
        (Workload.value ~len:128 ~seed ~index)
    end
  in
  let rec read_loop r () =
    if Engine.now engine < horizon then
      Soda.Deployment.read d ~reader:r
        ~at:(Engine.now engine +. 45.0)
        ~on_done:(fun _ -> read_loop r ())
        ()
  in
  write_loop 0 ();
  write_loop 1 ();
  read_loop 0 ();
  read_loop 1 ();
  Engine.run engine;
  (d, initial_value, schedule)

let chaos_tests =
  [ qtest ~count:25 "liveness + atomicity through random crash/repair storms"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let d, initial_value, _ = run_chaos ~seed in
        History.all_complete (Soda.Deployment.history d)
        && Atomicity.check_tagged ~initial_value
             (History.records (Soda.Deployment.history d))
           = Ok ());
    Alcotest.test_case "a chaotic run exercises real faults" `Quick (fun () ->
        let _, _, schedule = run_chaos ~seed:11 in
        Alcotest.(check bool)
          (Printf.sprintf "crashes=%d" (Nemesis.crash_count schedule))
          true
          (Nemesis.crash_count schedule >= 2))
  ]

let store_chaos_tests =
  [ qtest ~count:15 "multi-object store survives machine-level chaos"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:6 ~f:2 () in
        let engine =
          Engine.create ~seed ~transport:(`Reliable Simnet.Channel.default)
            ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let objects = [ "a"; "b" ] in
        let store =
          Soda.Store.create ~engine ~params ~objects ~num_writers:2
            ~num_readers:2 ()
        in
        (* machine-level nemesis: crash/repair cycles hit every object's
           processes on that machine together, gated on the machine's
           repairs across all objects *)
        let schedule =
          Nemesis.generate ~params ~seed:(seed + 1) ~horizon:1200.0 ()
        in
        Nemesis.drive_gated ~engine
          ~repairing:(fun () -> Soda.Store.repairing store)
          ~apply:(fun ~at -> function
            | Nemesis.Crash { coordinate; _ } ->
              Soda.Store.crash_server store ~coordinate ~at
            | Nemesis.Repair { coordinate; _ } ->
              Soda.Store.repair_server store ~coordinate ~at
            | Nemesis.Partition _ | Nemesis.Heal _ -> ()
            | Nemesis.BitRot { coordinate; _ } ->
              Soda.Store.corrupt_server store ~coordinate ~at)
          schedule;
        (* under chaos an operation can stall until a repair completes,
           so clients chain their next operation from the completion
           callback instead of fixed timestamps (closed loop) *)
        List.iteri
          (fun i obj ->
            let rec write_loop w j () =
              if j < 3 then
                Soda.Store.write store ~obj ~writer:w
                  ~at:(Engine.now engine +. 30.0)
                  ~on_done:(write_loop w (j + 1))
                  (Workload.value ~len:64 ~seed ~index:((100 * i) + (10 * w) + j))
            in
            let rec read_loop r j () =
              if j < 3 then
                Soda.Store.read store ~obj ~reader:r
                  ~at:(Engine.now engine +. 40.0)
                  ~on_done:(fun _ -> read_loop r (j + 1) ())
                  ()
            in
            write_loop 0 0 ();
            write_loop 1 0 ();
            read_loop 0 0 ();
            read_loop 1 0 ())
          objects;
        Engine.run engine;
        Soda.Store.all_complete store
        && Soda.Store.check_atomicity store = Ok ())
  ]

(* ------------------------------------------------------------------ *)
(* the chaos matrix: SODA over the reliable transport while the fault
   plane loses messages and the nemesis injects partitions + crashes *)

let outcome_fail_msg (o : Chaos.outcome) =
  Format.asprintf "%a" Chaos.pp_outcome o

let matrix_tests =
  List.map
    (fun scenario ->
      qtest ~count:30
        (Printf.sprintf "matrix cell %s is live and atomic" scenario.Chaos.name)
        QCheck2.Gen.(int_range 0 10_000)
        (fun seed ->
          let o = Chaos.run ~trace:true scenario ~seed in
          Chaos.ok o || QCheck2.Test.fail_report (outcome_fail_msg o)))
    Chaos.matrix

(* ------------------------------------------------------------------ *)
(* failure-domain cells: a sharded keyspace over 12 servers in 3
   domains (4+2 preset, consistent hashing, domain-safe) while the
   nemesis takes out a whole domain — by partition or by crash — under
   5% message loss. Every key must stay live and atomic because no key
   places more than f coordinates in any one domain. *)

let domain_fail_msg (o : Chaos.domain_outcome) =
  Format.asprintf "%a" Chaos.pp_domain_outcome o

let domain_tests =
  List.map
    (fun name ->
      let fault =
        match name with
        | "domain-part" -> `Partition
        | "domain-crash" -> `Crash
        | _ -> Alcotest.failf "unknown domain cell %s" name
      in
      qtest ~count:6
        (Printf.sprintf "domain cell %s is live and atomic per key" name)
        QCheck2.Gen.(int_range 0 10_000)
        (fun seed ->
          let o = Chaos.run_domain ~fault ~seed () in
          Chaos.domain_ok o || QCheck2.Test.fail_report (domain_fail_msg o)))
    Chaos.domain_matrix

let determinism_tests =
  [ qtest ~count:5 "identical seeds give bit-identical chaotic executions"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let scenario =
          match Chaos.find "loss20+part+crash" with
          | Some s -> s
          | None -> Alcotest.fail "matrix cell renamed"
        in
        let a = Chaos.run ~trace:true scenario ~seed in
        let b = Chaos.run ~trace:true scenario ~seed in
        a.Chaos.events = b.Chaos.events
        && a.Chaos.sent = b.Chaos.sent
        && a.Chaos.delivered = b.Chaos.delivered
        && a.Chaos.dropped = b.Chaos.dropped
        && a.Chaos.lost = b.Chaos.lost
        && a.Chaos.retransmissions = b.Chaos.retransmissions
        && a.Chaos.duplicates_suppressed = b.Chaos.duplicates_suppressed
        && a.Chaos.ops = b.Chaos.ops
        && a.Chaos.final_time = b.Chaos.final_time);
    (* same property with the self-healing plane armed: heartbeat,
       scrub, suspicion and autonomous repair are all driven by sim
       time and the seeded RNG, so healed runs replay bit-identically
       too (rule D of the determinism discipline) *)
    qtest ~count:3 "healing-enabled executions are bit-identical too"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let scenario =
          match Chaos.find "bitrot+loss20+part" with
          | Some s -> s
          | None -> Alcotest.fail "matrix cell renamed"
        in
        let a = Chaos.run ~trace:true scenario ~seed in
        let b = Chaos.run ~trace:true scenario ~seed in
        a.Chaos.events = b.Chaos.events
        && a.Chaos.sent = b.Chaos.sent
        && a.Chaos.delivered = b.Chaos.delivered
        && a.Chaos.heal_mttd = b.Chaos.heal_mttd
        && a.Chaos.heal_mttr = b.Chaos.heal_mttr
        && a.Chaos.ops = b.Chaos.ops
        && a.Chaos.final_time = b.Chaos.final_time)
  ]

let () =
  Alcotest.run "chaos"
    [ ("nemesis", nemesis_unit_tests);
      ("chaos-runs", chaos_tests);
      ("store-chaos", store_chaos_tests);
      ("chaos-matrix", matrix_tests);
      ("domain-matrix", domain_tests);
      ("determinism", determinism_tests)
    ]

(* At-least-once channels: every message may be delivered twice at
   independent delays. The paper assumes exactly-once reliable channels,
   but all four algorithms are built from idempotent steps (dedup by
   message id, by server id, by fragment index), so they should — and do
   — tolerate duplication unchanged. This suite pins that down. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Atomicity = Protocol.Atomicity
module Tag = Protocol.Tag

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let engine_with_dup seed =
  Engine.create ~seed ~duplication:0.35 ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0)
    ()

let accept ~initial_value history =
  History.all_complete history
  && Atomicity.check_tagged ~initial_value (History.records history) = Ok ()

let duplication_tests =
  [ qtest "SODA: liveness + atomicity under 35% duplication"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:7 ~f:2 () in
        let engine = engine_with_dup seed in
        let initial_value = Harness.Workload.value ~len:96 ~seed ~index:999 in
        let d =
          Soda.Deployment.deploy ~engine ~params ~initial_value ~num_writers:2
            ~num_readers:2 ()
        in
        for i = 0 to 3 do
          let t = float_of_int i *. 60.0 in
          Soda.Deployment.write d ~writer:(i mod 2) ~at:t
            (Harness.Workload.value ~len:96 ~seed ~index:i);
          Soda.Deployment.read d ~reader:(i mod 2) ~at:(t +. 25.0) ()
        done;
        Engine.run engine;
        accept ~initial_value (Soda.Deployment.history d));
    qtest "SODA: duplication does not double-charge data costs"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        (* costs are charged at send; duplicated *deliveries* must not
           change any per-operation data cost compared to a clean run...
           they do add duplicate Sent events, so instead we pin the
           invariant that matters: quiescent read cost never exceeds the
           n/(n-f) formula even with duplicated relays, because relays
           are charged once when the server sends them. It can dip below
           n fragments: the reader's READ-COMPLETE (whose duplicate
           transmission arrives at the min of two delay draws) may
           overtake a READ-VALUE still in flight to a slow server, whose
           tombstone then suppresses that relay — but never below the
           decode threshold, since the read cannot finish on fewer. *)
        let params = Params.make ~n:6 ~f:2 () in
        let value_len = 240 in
        let engine = engine_with_dup seed in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Bytes.make value_len '0') ~value_len
            ~num_writers:1 ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make value_len 'a');
        Soda.Deployment.read d ~reader:0 ~at:80.0 ();
        Engine.run engine;
        let frag =
          Erasure.Splitter.fragment_size ~k:(Params.k_soda params) ~value_len
        in
        let per_frag = float_of_int frag /. float_of_int value_len in
        let ceiling = 6.0 *. per_frag in
        (* e = 0 here, so the decode threshold is k itself *)
        let floor_ = float_of_int (Params.k_soda params) *. per_frag in
        let cost = Protocol.Cost.comm_of_op (Soda.Deployment.cost d) ~op:1 in
        cost <= ceiling +. 1e-9 && cost >= floor_ -. 1e-9);
    qtest "ABD: liveness + atomicity under duplication"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:7 ~f:3 () in
        let engine = engine_with_dup seed in
        let initial_value = Harness.Workload.value ~len:96 ~seed ~index:999 in
        let d =
          Baselines.Abd.deploy ~engine ~params ~initial_value ~num_writers:2
            ~num_readers:2 ()
        in
        for i = 0 to 3 do
          let t = float_of_int i *. 60.0 in
          Baselines.Abd.write d ~writer:(i mod 2) ~at:t
            (Harness.Workload.value ~len:96 ~seed ~index:i);
          Baselines.Abd.read d ~reader:(i mod 2) ~at:(t +. 25.0) ()
        done;
        Engine.run engine;
        accept ~initial_value (Baselines.Abd.history d));
    qtest "CASGC: liveness + atomicity under duplication"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:8 ~f:2 () in
        let engine = engine_with_dup seed in
        let initial_value = Harness.Workload.value ~len:96 ~seed ~index:999 in
        let d =
          Baselines.Cas.deploy ~engine ~params ~gc_depth:3 ~initial_value
            ~num_writers:2 ~num_readers:2 ()
        in
        for i = 0 to 3 do
          let t = float_of_int i *. 60.0 in
          Baselines.Cas.write d ~writer:(i mod 2) ~at:t
            (Harness.Workload.value ~len:96 ~seed ~index:i);
          Baselines.Cas.read d ~reader:(i mod 2) ~at:(t +. 25.0) ()
        done;
        Engine.run engine;
        accept ~initial_value (Baselines.Cas.history d));
    qtest "LDR: liveness + atomicity under duplication"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:5 ~f:2 () in
        let engine = engine_with_dup seed in
        let initial_value = Harness.Workload.value ~len:96 ~seed ~index:999 in
        let d =
          Baselines.Ldr.deploy ~engine ~params ~initial_value ~num_writers:2
            ~num_readers:2 ()
        in
        for i = 0 to 3 do
          let t = float_of_int i *. 60.0 in
          Baselines.Ldr.write d ~writer:(i mod 2) ~at:t
            (Harness.Workload.value ~len:96 ~seed ~index:i);
          Baselines.Ldr.read d ~reader:(i mod 2) ~at:(t +. 25.0) ()
        done;
        Engine.run engine;
        accept ~initial_value (Baselines.Ldr.history d));
    qtest "MD-VALUE IOA: duplication cannot cause double delivery"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:7 ~f:3 () in
        let engine = engine_with_dup seed in
        let d = Soda.Md_ioa.deploy ~engine ~params () in
        Soda.Md_ioa.send d ~at:0.0 ~tag:(Tag.make ~z:1 ~w:3)
          ~value:(Bytes.make 40 'd');
        Engine.run engine;
        let deliveries = Soda.Md_ioa.deliveries d in
        List.length deliveries = 7
        && List.length
             (List.sort_uniq compare
                (List.map (fun dv -> dv.Soda.Md_ioa.server) deliveries))
           = 7)
  ]

let () =
  Alcotest.run "duplication" [ ("at-least-once", duplication_tests) ]

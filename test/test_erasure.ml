(* Tests for the erasure-coding layer: framing, the two Reed-Solomon
   codecs, replication and the unified Mds interface. *)

module Splitter = Erasure.Splitter
module Fragment = Erasure.Fragment
module Rs_vandermonde = Erasure.Rs_vandermonde
module Rs_systematic = Erasure.Rs_systematic
module Rs_bch = Erasure.Rs_bch
module Rs16 = Erasure.Rs16
module Rs_bch16 = Erasure.Rs_bch16
module Mds = Erasure.Mds

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bytes_gen =
  QCheck2.Gen.(string_size (int_range 0 600) >|= Bytes.of_string)

(* (n, k) with 1 <= k <= n <= 30 *)
let nk_gen =
  QCheck2.Gen.(
    int_range 1 30 >>= fun n ->
    int_range 1 n >|= fun k -> (n, k))

(* Choose [m] distinct elements of [0, n). *)
let subset_gen ~n m =
  QCheck2.Gen.(
    shuffle_a (Array.init n (fun i -> i)) >|= fun perm -> Array.sub perm 0 m)

(* ------------------------------------------------------------------ *)
(* Splitter *)

let splitter_tests =
  [ qtest "frame/unframe round-trip"
      QCheck2.Gen.(pair (int_range 1 40) bytes_gen)
      (fun (k, v) -> Bytes.equal v (Splitter.unframe (Splitter.frame ~k v)));
    qtest "framed length is a positive multiple of k"
      QCheck2.Gen.(pair (int_range 1 40) bytes_gen)
      (fun (k, v) ->
        let framed = Splitter.frame ~k v in
        Bytes.length framed > 0 && Bytes.length framed mod k = 0);
    qtest "fragment_size consistent with frame"
      QCheck2.Gen.(pair (int_range 1 40) bytes_gen)
      (fun (k, v) ->
        Splitter.fragment_size ~k ~value_len:(Bytes.length v) * k
        = Bytes.length (Splitter.frame ~k v));
    Alcotest.test_case "unframe rejects garbage" `Quick (fun () ->
        let raises f =
          match f () with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "short buffer" true
          (raises (fun () -> Splitter.unframe (Bytes.of_string "ab")));
        let bad = Bytes.make 8 '\255' in
        Alcotest.(check bool) "bad header" true
          (raises (fun () -> Splitter.unframe bad)))
  ]

(* ------------------------------------------------------------------ *)
(* Vandermonde codec *)

let vand_tests =
  [ qtest "decode from any k fragments"
      QCheck2.Gen.(
        nk_gen >>= fun (n, k) ->
        pair bytes_gen (subset_gen ~n k) >|= fun (v, idx) -> (n, k, v, idx))
      (fun (n, k, v, idx) ->
        let code = Rs_vandermonde.make ~n ~k in
        let frags = Rs_vandermonde.encode code v in
        let chosen = Array.to_list (Array.map (fun i -> frags.(i)) idx) in
        Bytes.equal v (Rs_vandermonde.decode code chosen));
    qtest "extra fragments are harmless"
      QCheck2.Gen.(
        nk_gen >>= fun (n, k) ->
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        let code = Rs_vandermonde.make ~n ~k in
        let frags = Array.to_list (Rs_vandermonde.encode code v) in
        Bytes.equal v (Rs_vandermonde.decode code frags));
    qtest "duplicate indices do not count twice"
      QCheck2.Gen.(
        int_range 2 20 >>= fun n ->
        int_range 2 n >>= fun k ->
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        let code = Rs_vandermonde.make ~n ~k in
        let frags = Rs_vandermonde.encode code v in
        (* k copies of fragment 0: only one distinct index *)
        let dups = List.init k (fun _ -> frags.(0)) in
        match Rs_vandermonde.decode code dups with
        | _ -> false
        | exception Rs_vandermonde.Insufficient_fragments { needed; got } ->
          needed = k && got = 1);
    qtest "fragment sizes match the formula"
      QCheck2.Gen.(
        nk_gen >>= fun (n, k) ->
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        let code = Rs_vandermonde.make ~n ~k in
        let frags = Rs_vandermonde.encode code v in
        Array.for_all
          (fun f ->
            Fragment.size f
            = Splitter.fragment_size ~k ~value_len:(Bytes.length v))
          frags);
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        let invalid f =
          match f () with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "k > n" true
          (invalid (fun () -> Rs_vandermonde.make ~n:4 ~k:5));
        Alcotest.(check bool) "n > 255" true
          (invalid (fun () -> Rs_vandermonde.make ~n:256 ~k:3));
        Alcotest.(check bool) "k = 0" true
          (invalid (fun () -> Rs_vandermonde.make ~n:4 ~k:0)))
  ]

(* ------------------------------------------------------------------ *)
(* BCH codec: errors and erasures *)

(* Generate (n, k, value, erased set, error set) with
   2*|errors| + |erasures| <= n - k, errors and erasures disjoint. *)
let bch_scenario_gen =
  QCheck2.Gen.(
    int_range 2 24 >>= fun n ->
    int_range 1 n >>= fun k ->
    let budget = n - k in
    int_range 0 (budget / 2) >>= fun errors ->
    int_range 0 (budget - (2 * errors)) >>= fun erasures ->
    subset_gen ~n (errors + erasures) >>= fun positions ->
    bytes_gen >|= fun v ->
    let err = Array.sub positions 0 errors in
    let era = Array.sub positions errors erasures in
    (n, k, v, era, err))

let bch_tests =
  [ qtest ~count:400 "corrects errors and erasures within the radius"
      bch_scenario_gen
      (fun (n, k, v, erased, errored) ->
        let code = Rs_bch.make ~n ~k in
        let frags = Rs_bch.encode code v in
        let erased_set = Array.to_list erased in
        let frags =
          Array.to_list frags
          |> List.filter (fun f ->
                 not (List.mem (Fragment.index f) erased_set))
          |> List.map (fun f ->
                 if Array.exists (fun i -> i = Fragment.index f) errored then
                   Fragment.corrupt f ~seed:42
                 else f)
        in
        Bytes.equal v (Rs_bch.decode code frags));
    qtest "systematic part carries the frame"
      QCheck2.Gen.(
        nk_gen >>= fun (n, k) ->
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        (* decoding from exactly the systematic fragments works *)
        let code = Rs_bch.make ~n ~k in
        let frags = Rs_bch.encode code v in
        let systematic =
          List.init k (fun j -> frags.(n - k + j))
        in
        Bytes.equal v (Rs_bch.decode code systematic));
    qtest ~count:100 "detects corruption beyond the radius or returns garbage \
                      never silently for >= distance/2 on parity-only codes"
      QCheck2.Gen.(
        int_range 6 20 >>= fun n ->
        let k = 1 in
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        (* with k = 1 and all but one fragment corrupted, decoding must
           fail rather than return a wrong value silently, because the
           locator cannot have that many roots. *)
        let code = Rs_bch.make ~n ~k in
        let frags = Rs_bch.encode code v in
        let corrupted =
          Array.to_list frags
          |> List.mapi (fun i f ->
                 if i < n - 1 then Fragment.corrupt f ~seed:7 else f)
        in
        match Rs_bch.decode code corrupted with
        | decoded ->
          (* if it decodes, it must decode to some codeword; we only
             require no crash and a well-formed result here *)
          Bytes.length decoded >= 0
        | exception Rs_bch.Decode_failure _ -> true);
    Alcotest.test_case "erasures-only at full radius" `Quick (fun () ->
        let n = 9 and k = 4 in
        let code = Rs_bch.make ~n ~k in
        let v = Bytes.of_string "the quick brown fox jumps" in
        let frags = Rs_bch.encode code v in
        (* erase n - k = 5 fragments *)
        let keep = [ frags.(0); frags.(2); frags.(5); frags.(7) ] in
        Alcotest.(check bool) "decoded" true
          (Bytes.equal v (Rs_bch.decode code keep)));
    Alcotest.test_case "errors-only at full radius" `Quick (fun () ->
        let n = 10 and k = 4 in
        (* (n - k) / 2 = 3 corrupt fragments among all 10 present *)
        let code = Rs_bch.make ~n ~k in
        let v = Bytes.of_string "atomic registers from codes" in
        let frags = Rs_bch.encode code v in
        let frags =
          Array.to_list frags
          |> List.map (fun f ->
                 match Fragment.index f with
                 | 1 | 4 | 8 -> Fragment.corrupt f ~seed:99
                 | _ -> f)
        in
        Alcotest.(check bool) "decoded" true
          (Bytes.equal v (Rs_bch.decode code frags)));
    Alcotest.test_case "insufficient fragments raise" `Quick (fun () ->
        let code = Rs_bch.make ~n:8 ~k:5 in
        let v = Bytes.of_string "x" in
        let frags = Rs_bch.encode code v in
        Alcotest.check_raises "too few"
          (Rs_bch.Insufficient_fragments { needed = 5; got = 2 })
          (fun () ->
            ignore (Rs_bch.decode code [ frags.(0); frags.(3) ])))
  ]

(* ------------------------------------------------------------------ *)
(* Systematic codec *)

let sys_tests =
  [ qtest "decode from any k fragments"
      QCheck2.Gen.(
        nk_gen >>= fun (n, k) ->
        pair bytes_gen (subset_gen ~n k) >|= fun (v, idx) -> (n, k, v, idx))
      (fun (n, k, v, idx) ->
        let code = Rs_systematic.make ~n ~k in
        let frags = Rs_systematic.encode code v in
        let chosen = Array.to_list (Array.map (fun i -> frags.(i)) idx) in
        Bytes.equal v (Rs_systematic.decode code chosen));
    qtest "systematic fragments are the framed value verbatim"
      QCheck2.Gen.(
        nk_gen >>= fun (n, k) ->
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        let code = Rs_systematic.make ~n ~k in
        let frags = Rs_systematic.encode code v in
        let framed = Splitter.frame ~k v in
        let stripes = Bytes.length framed / k in
        let ok = ref true in
        for j = 0 to k - 1 do
          for s = 0 to stripes - 1 do
            if
              Bytes.get (Fragment.data frags.(j)) s
              <> Bytes.get framed ((s * k) + j)
            then ok := false
          done
        done;
        !ok);
    qtest "fast path and matrix path agree"
      QCheck2.Gen.(
        int_range 2 16 >>= fun n ->
        int_range 1 (n - 1) >>= fun k ->
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        let code = Rs_systematic.make ~n ~k in
        let frags = Rs_systematic.encode code v in
        let systematic = List.init k (fun j -> frags.(j)) in
        (* swap one systematic fragment for a parity one to force the
           matrix path *)
        let mixed = frags.(n - 1) :: List.tl systematic in
        Bytes.equal
          (Rs_systematic.decode code systematic)
          (Rs_systematic.decode code mixed));
    qtest "agrees with the plain Vandermonde codec on the decoded value"
      QCheck2.Gen.(
        nk_gen >>= fun (n, k) ->
        pair bytes_gen (subset_gen ~n k) >|= fun (v, idx) -> (n, k, v, idx))
      (fun (n, k, v, idx) ->
        (* fragments differ between the two codes, but both must decode
           any k of their own fragments back to v *)
        let sys = Rs_systematic.make ~n ~k in
        let vand = Rs_vandermonde.make ~n ~k in
        let pick frags = Array.to_list (Array.map (fun i -> frags.(i)) idx) in
        Bytes.equal
          (Rs_systematic.decode sys (pick (Rs_systematic.encode sys v)))
          (Rs_vandermonde.decode vand (pick (Rs_vandermonde.encode vand v))));
    Alcotest.test_case "insufficient fragments raise" `Quick (fun () ->
        let code = Rs_systematic.make ~n:6 ~k:4 in
        let frags = Rs_systematic.encode code (Bytes.of_string "zz") in
        Alcotest.check_raises "too few"
          (Rs_systematic.Insufficient_fragments { needed = 4; got = 2 })
          (fun () ->
            ignore (Rs_systematic.decode code [ frags.(0); frags.(5) ])))
  ]

(* ------------------------------------------------------------------ *)
(* GF(2^16) codec: beyond 255 fragments *)

let rs16_tests =
  [ qtest ~count:100 "decode from any k fragments (moderate n)"
      QCheck2.Gen.(
        int_range 1 40 >>= fun n ->
        int_range 1 n >>= fun k ->
        pair bytes_gen (subset_gen ~n k) >|= fun (v, idx) -> (n, k, v, idx))
      (fun (n, k, v, idx) ->
        let code = Rs16.make ~n ~k in
        let frags = Rs16.encode code v in
        let chosen = Array.to_list (Array.map (fun i -> frags.(i)) idx) in
        Bytes.equal v (Rs16.decode code chosen));
    qtest ~count:10 "round-trips with n in the hundreds"
      QCheck2.Gen.(
        int_range 256 600 >>= fun n ->
        int_range 1 12 >>= fun k ->
        pair bytes_gen (subset_gen ~n k) >|= fun (v, idx) -> (n, k, v, idx))
      (fun (n, k, v, idx) ->
        (* beyond the GF(2^8) codecs' n <= 255 cap *)
        let code = Rs16.make ~n ~k in
        let frags = Rs16.encode code v in
        let chosen = Array.to_list (Array.map (fun i -> frags.(i)) idx) in
        Bytes.equal v (Rs16.decode code chosen));
    Alcotest.test_case "n = 255 is rejected by gf256 codecs, fine here"
      `Quick (fun () ->
        Alcotest.(check bool) "vand rejects 300" true
          (match Rs_vandermonde.make ~n:300 ~k:10 with
          | exception Invalid_argument _ -> true
          | _ -> false);
        let code = Rs16.make ~n:300 ~k:10 in
        let v = Bytes.of_string "three hundred servers" in
        let frags = Rs16.encode code v in
        Alcotest.(check int) "300 fragments" 300 (Array.length frags);
        let some = List.init 10 (fun i -> frags.(29 * i)) in
        Alcotest.(check bool) "decodes" true
          (Bytes.equal v (Rs16.decode code some)));
    Alcotest.test_case "insufficient fragments raise" `Quick (fun () ->
        let code = Rs16.make ~n:8 ~k:5 in
        let frags = Rs16.encode code (Bytes.of_string "x") in
        Alcotest.check_raises "too few"
          (Rs16.Insufficient_fragments { needed = 5; got = 2 })
          (fun () -> ignore (Rs16.decode code [ frags.(0); frags.(3) ])));
    qtest "Mds.fragment_size matches actual fragments"
      QCheck2.Gen.(
        int_range 1 30 >>= fun n ->
        int_range 1 n >>= fun k ->
        bytes_gen >|= fun v -> (n, k, v))
      (fun (n, k, v) ->
        let code = Mds.rs16 ~n ~k in
        let frags = Mds.encode code v in
        Array.for_all
          (fun f ->
            Fragment.size f
            = Mds.fragment_size code ~value_len:(Bytes.length v))
          frags)
  ]

(* ------------------------------------------------------------------ *)
(* GF(2^16) errors-and-erasures codec *)

let bch16_tests =
  [ qtest ~count:150 "corrects errors and erasures within the radius"
      QCheck2.Gen.(
        int_range 2 40 >>= fun n ->
        int_range 1 n >>= fun k ->
        let budget = n - k in
        int_range 0 (budget / 2) >>= fun errors ->
        int_range 0 (budget - (2 * errors)) >>= fun erasures ->
        subset_gen ~n (errors + erasures) >>= fun positions ->
        bytes_gen >|= fun v ->
        (n, k, v, Array.sub positions errors erasures,
         Array.sub positions 0 errors))
      (fun (n, k, v, erased, errored) ->
        let code = Rs_bch16.make ~n ~k in
        let frags = Rs_bch16.encode code v in
        let erased_set = Array.to_list erased in
        let frags =
          Array.to_list frags
          |> List.filter (fun f -> not (List.mem (Fragment.index f) erased_set))
          |> List.map (fun f ->
                 if Array.exists (fun i -> i = Fragment.index f) errored then
                   Fragment.corrupt f ~seed:42
                 else f)
        in
        Bytes.equal v (Rs_bch16.decode code frags));
    Alcotest.test_case "errors + erasures beyond n = 255" `Quick (fun () ->
        let n = 300 and k = 280 in
        (* budget n - k = 20: tolerate 6 errors + 8 erasures *)
        let code = Rs_bch16.make ~n ~k in
        let v = Bytes.of_string (String.make 2000 'q') in
        let frags = Rs_bch16.encode code v in
        let surviving =
          Array.to_list frags
          |> List.filter (fun f -> Fragment.index f mod 40 <> 0)
             (* drops indices 0, 40, ..., 280: 8 erasures *)
          |> List.mapi (fun i f ->
                 if i < 6 then Fragment.corrupt f ~seed:5 else f)
        in
        Alcotest.(check bool) "decoded" true
          (Bytes.equal v (Rs_bch16.decode code surviving)))
  ]

(* ------------------------------------------------------------------ *)
(* Replication + Mds dispatch *)

let mds_tests =
  [ qtest "replication round-trips from any single fragment"
      QCheck2.Gen.(
        int_range 1 20 >>= fun n ->
        pair bytes_gen (int_range 0 (n - 1)) >|= fun (v, i) -> (n, v, i))
      (fun (n, v, i) ->
        let code = Mds.replication ~n in
        let frags = Mds.encode code v in
        Bytes.equal v (Mds.decode code [ frags.(i) ]));
    qtest "replication encode is one copy, not n"
      QCheck2.Gen.(pair (int_range 1 20) bytes_gen)
      (fun (n, v) ->
        let frags = Mds.encode (Mds.replication ~n) v in
        (* all fragments share the one framed buffer... *)
        Array.for_all
          (fun f -> Fragment.data f == Fragment.data frags.(0))
          frags
        (* ...and corruption still copies rather than garbling siblings *)
        && (Array.length frags < 2
           ||
           let g = Fragment.corrupt frags.(1) ~seed:5 in
           (not (Fragment.data g == Fragment.data frags.(0)))
           && Fragment.equal frags.(0)
                (Fragment.make ~index:0 ~data:(Fragment.data frags.(1)))));
    qtest "Mds round-trip across all codecs"
      QCheck2.Gen.(
        int_range 2 16 >>= fun n ->
        int_range 1 n >>= fun k ->
        pair bytes_gen (int_range 0 3) >>= fun (v, which) ->
        subset_gen ~n k >|= fun idx -> (n, k, v, which, idx))
      (fun (n, k, v, which, idx) ->
        let code =
          match which with
          | 0 -> Mds.rs_vandermonde ~n ~k
          | 1 -> Mds.rs_bch ~n ~k
          | 2 -> Mds.rs_systematic ~n ~k
          | _ -> Mds.replication ~n
        in
        let frags = Mds.encode code v in
        let subset =
          if which = 3 then [ frags.(idx.(0)) ]
          else Array.to_list (Array.map (fun i -> frags.(i)) idx)
        in
        Bytes.equal v (Mds.decode code subset));
    Alcotest.test_case "storage overhead" `Quick (fun () ->
        Alcotest.(check (float 1e-9))
          "rs" (10. /. 7.)
          (Mds.storage_overhead (Mds.rs_vandermonde ~n:10 ~k:7));
        Alcotest.(check (float 1e-9))
          "replication" 5.
          (Mds.storage_overhead (Mds.replication ~n:5)));
    Alcotest.test_case "names" `Quick (fun () ->
        Alcotest.(check string) "vand" "rs-vand[9,5]"
          (Mds.name (Mds.rs_vandermonde ~n:9 ~k:5));
        Alcotest.(check string) "bch" "rs-bch[9,3]"
          (Mds.name (Mds.rs_bch ~n:9 ~k:3));
        Alcotest.(check string) "repl" "replication[4]"
          (Mds.name (Mds.replication ~n:4)));
    Alcotest.test_case "Mds.decode converts exceptions" `Quick (fun () ->
        let code = Mds.rs_vandermonde ~n:6 ~k:4 in
        let v = Bytes.of_string "abc" in
        let frags = Mds.encode code v in
        Alcotest.check_raises "insufficient"
          (Mds.Insufficient_fragments { needed = 4; got = 1 })
          (fun () -> ignore (Mds.decode code [ frags.(0) ])));
    qtest "corrupt changes every byte and keeps the index"
      QCheck2.Gen.(
        pair (string_size (int_range 1 100) >|= Bytes.of_string)
          (int_range 0 1000))
      (fun (data, seed) ->
        let f = Fragment.make ~index:3 ~data in
        let g = Fragment.corrupt f ~seed in
        Fragment.index g = 3
        && Fragment.size g = Fragment.size f
        && (let differs = ref true in
            for i = 0 to Bytes.length data - 1 do
              if Bytes.get (Fragment.data g) i = Bytes.get data i then
                differs := false
            done;
            !differs));
    qtest "corrupt is deterministic in (fragment, seed)"
      QCheck2.Gen.(
        (* >= 8 bytes so two seeds' masks cannot collide by chance *)
        pair (string_size (int_range 8 100) >|= Bytes.of_string)
          (int_range 0 1000))
      (fun (data, seed) ->
        (* the nemesis replays corruption from a schedule-derived seed,
           so equal inputs must garble identically — and a different
           seed must not produce the same garbage *)
        let f = Fragment.make ~index:3 ~data in
        Fragment.equal (Fragment.corrupt f ~seed) (Fragment.corrupt f ~seed)
        && not
             (Fragment.equal
                (Fragment.corrupt f ~seed)
                (Fragment.corrupt f ~seed:(seed + 1))))
  ]

(* ------------------------------------------------------------------ *)
(* Fragment-index validation: every codec rejects out-of-range indices
   with a clear Invalid_argument. The codecs also guard [i < 0]
   defensively; a negative index cannot be built through Fragment.make
   (tested below), so the high side is what we can exercise end-to-end. *)

let index_validation_tests =
  let raises_invalid f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  let value = Bytes.of_string "index validation payload" in
  [ Alcotest.test_case "Fragment.make rejects negative indices" `Quick
      (fun () ->
        Alcotest.(check bool)
          "negative index" true
          (raises_invalid (fun () ->
               Fragment.make ~index:(-1) ~data:(Bytes.create 4))));
    Alcotest.test_case "decoders reject out-of-range indices" `Quick
      (fun () ->
        let check_oob name decode =
          (* index n is one past the last valid fragment *)
          let bogus = Fragment.make ~index:6 ~data:(Bytes.create 8) in
          Alcotest.(check bool)
            (name ^ " rejects index n")
            true
            (raises_invalid (fun () -> decode [ bogus ]))
        in
        check_oob "vandermonde" (fun frags ->
            ignore
              (Rs_vandermonde.decode (Rs_vandermonde.make ~n:6 ~k:3) frags));
        check_oob "systematic" (fun frags ->
            ignore (Rs_systematic.decode (Rs_systematic.make ~n:6 ~k:3) frags));
        check_oob "bch" (fun frags ->
            ignore (Rs_bch.decode (Rs_bch.make ~n:6 ~k:3) frags));
        check_oob "rs16" (fun frags ->
            ignore (Rs16.decode (Rs16.make ~n:6 ~k:3) frags));
        check_oob "bch16" (fun frags ->
            ignore (Rs_bch16.decode (Rs_bch16.make ~n:6 ~k:3) frags)));
    Alcotest.test_case "in-range indices still decode" `Quick (fun () ->
        let code = Rs_vandermonde.make ~n:6 ~k:3 in
        let frags = Array.to_list (Rs_vandermonde.encode code value) in
        Alcotest.(check bool)
          "round-trip" true
          (Bytes.equal value (Rs_vandermonde.decode code frags)))
  ]

(* ------------------------------------------------------------------ *)
(* Splitter edge cases: empty value, lengths exactly filling the last
   stripe, and corrupt-header rejection. *)

let splitter_edge_tests =
  let raises_invalid f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  [ Alcotest.test_case "empty value round-trips at any k" `Quick (fun () ->
        List.iter
          (fun k ->
            let framed = Splitter.frame ~k Bytes.empty in
            Alcotest.(check int)
              (Printf.sprintf "padded length k=%d" k)
              ((4 + k - 1) / k * k)
              (Bytes.length framed);
            Alcotest.(check bool)
              (Printf.sprintf "round-trip k=%d" k)
              true
              (Bytes.equal Bytes.empty (Splitter.unframe framed)))
          [ 1; 2; 3; 4; 5; 7; 16 ]);
    Alcotest.test_case "value length an exact multiple of k" `Quick (fun () ->
        (* header + value exactly fills the stripes: no padding bytes *)
        List.iter
          (fun k ->
            let len = (3 * k) - 4 in
            if len >= 0 then begin
              let v = Bytes.init len (fun i -> Char.chr (i land 0xff)) in
              let framed = Splitter.frame ~k v in
              Alcotest.(check int)
                (Printf.sprintf "no padding k=%d" k)
                (4 + len) (Bytes.length framed);
              Alcotest.(check bool)
                (Printf.sprintf "round-trip k=%d" k)
                true
                (Bytes.equal v (Splitter.unframe framed))
            end)
          [ 2; 4; 5; 8; 13 ]);
    Alcotest.test_case "corrupt length headers are rejected" `Quick (fun () ->
        (* too-large length *)
        let framed = Splitter.frame ~k:4 (Bytes.of_string "hello") in
        let corrupt = Bytes.copy framed in
        Bytes.set_int32_be corrupt 0 1000l;
        Alcotest.(check bool)
          "oversized length" true
          (raises_invalid (fun () -> Splitter.unframe corrupt));
        (* negative length *)
        let negative = Bytes.copy framed in
        Bytes.set_int32_be negative 0 (-5l);
        Alcotest.(check bool)
          "negative length" true
          (raises_invalid (fun () -> Splitter.unframe negative));
        (* shorter than the header itself *)
        Alcotest.(check bool)
          "short buffer" true
          (raises_invalid (fun () -> Splitter.unframe (Bytes.create 3))))
  ]

(* ------------------------------------------------------------------ *)
(* Incremental parity update: Mds.update must agree byte-for-byte with a
   fresh encode of the patched value, for every codec — the linear
   codecs patch only the affected stripes, so this differential pins
   their delta arithmetic to the full re-encode oracle. *)

let update_tests =
  let frag_bytes f = Fragment.data f in
  [ qtest "Mds.update = re-encode of the patched value"
      QCheck2.Gen.(
        int_range 2 12 >>= fun n ->
        int_range 1 n >>= fun k ->
        int_range 0 5 >>= fun which ->
        bytes_gen >>= fun v ->
        let len = Bytes.length v in
        int_range 0 len >>= fun pos ->
        string_size (int_range 0 (len - pos)) >|= fun p ->
        (n, k, which, v, pos, Bytes.of_string p))
      (fun (n, k, which, v, pos, patch) ->
        let code =
          match which with
          | 0 -> Mds.rs_vandermonde ~n ~k
          | 1 -> Mds.rs_systematic ~n ~k
          | 2 -> Mds.rs16 ~n ~k
          | 3 -> Mds.replication ~n
          | 4 -> Mds.rs_bch ~n ~k
          | _ -> Mds.rs_bch16 ~n ~k
        in
        let frags = Mds.encode code v in
        (* shuffle the input order to exercise index-based placement *)
        let shuffled = Array.of_list (List.rev (Array.to_list frags)) in
        let new_value, new_frags =
          Mds.update code ~fragments:shuffled ~value:v ~pos patch
        in
        let expect_value = Bytes.copy v in
        Bytes.blit patch 0 expect_value pos (Bytes.length patch);
        let expect_frags = Mds.encode code expect_value in
        let by_index fs =
          let a = Array.make (Array.length fs) Bytes.empty in
          Array.iter (fun f -> a.(Fragment.index f) <- frag_bytes f) fs;
          a
        in
        Bytes.equal new_value expect_value
        && Array.length new_frags = Array.length expect_frags
        && Array.for_all2 Bytes.equal (by_index new_frags)
             (by_index expect_frags)
        (* inputs must not be mutated *)
        && Array.for_all2 Bytes.equal (by_index frags)
             (by_index (Mds.encode code v)));
    Alcotest.test_case "update rejects out-of-bounds patches" `Quick (fun () ->
        let raises_invalid f =
          match f () with exception Invalid_argument _ -> true | _ -> false
        in
        let code = Mds.rs_systematic ~n:6 ~k:3 in
        let v = Bytes.of_string "patch bounds payload" in
        let frags = Mds.encode code v in
        Alcotest.(check bool)
          "overhang" true
          (raises_invalid (fun () ->
               Mds.update code ~fragments:frags ~value:v
                 ~pos:(Bytes.length v - 1)
                 (Bytes.of_string "xy")));
        Alcotest.(check bool)
          "negative pos" true
          (raises_invalid (fun () ->
               Mds.update code ~fragments:frags ~value:v ~pos:(-1)
                 (Bytes.of_string "x")));
        Alcotest.(check bool)
          "wrong fragment count" true
          (raises_invalid (fun () ->
               Mds.update code
                 ~fragments:(Array.sub frags 0 3)
                 ~value:v ~pos:0 (Bytes.of_string "x"))))
  ]

let () =
  Alcotest.run "erasure"
    [ ("splitter", splitter_tests);
      ("splitter-edge", splitter_edge_tests);
      ("index-validation", index_validation_tests);
      ("rs-vandermonde", vand_tests);
      ("rs-bch", bch_tests);
      ("rs-systematic", sys_tests);
      ("rs16", rs16_tests);
      ("rs-bch16", bch16_tests);
      ("mds", mds_tests);
      ("update", update_tests)
    ]

(* White-box tests of the client automata (Fig. 3 writer, Fig. 4
   reader): the test drives them with hand-crafted server replies, so
   each phase transition is pinned down independently of the server
   implementation. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Tag = Protocol.Tag
module Mds = Erasure.Mds

(* A rig where the "servers" are inert recorders and the driver injects
   replies by hand. *)
type rig = {
  engine : Soda.Messages.t Engine.t;
  config : Soda.Config.t;
  servers : int array;  (* fake server pids *)
  server_inbox : (int * Soda.Messages.t) list ref  (* (server pid, msg) *)
}

let make_rig ?(n = 5) ?(f = 2) () =
  let params = Params.make ~n ~f () in
  let engine = Engine.create ~seed:3 ~delay:(Delay.constant 1.0) () in
  let servers =
    Array.init n (fun i -> Engine.reserve engine ~name:(Printf.sprintf "fake%d" i))
  in
  let server_inbox = ref [] in
  Array.iter
    (fun pid ->
      Engine.set_handler engine pid (fun ctx ~src:_ msg ->
          server_inbox := (Engine.self ctx, msg) :: !server_inbox))
    servers;
  let config =
    Soda.Config.make ~params ~servers ~initial_value:(Bytes.make 20 'i') ()
  in
  { engine; config; servers; server_inbox }

let reply rig ~from_server ~dst msg =
  Engine.inject rig.engine ~at:(Engine.now rig.engine) rig.servers.(from_server)
    (fun ctx -> Engine.send ctx ~dst msg)

let received rig p = List.filter p (List.rev !(rig.server_inbox))

(* install a real Writer/Reader automaton on a fresh process of the rig *)
module Writer_rig = struct
  type t = { pid : int; automaton : Soda.Writer.t }

  let install rig =
    let pid = Engine.reserve rig.engine ~name:"writer-under-test" in
    let automaton = Soda.Writer.create rig.config in
    Engine.set_handler rig.engine pid (Soda.Writer.handler automaton);
    { pid; automaton }

  let pid t = t.pid

  let invoke rig t ?on_done value =
    Engine.inject rig.engine ~at:0.0 t.pid (fun ctx ->
        ignore (Soda.Writer.invoke t.automaton ctx ~value ?on_done ()))
end

module Reader_rig = struct
  type t = { pid : int; automaton : Soda.Reader.t }

  let install rig =
    let pid = Engine.reserve rig.engine ~name:"reader-under-test" in
    let automaton = Soda.Reader.create rig.config in
    Engine.set_handler rig.engine pid (Soda.Reader.handler automaton);
    { pid; automaton }

  let pid t = t.pid

  let invoke rig t ?on_done () =
    Engine.inject rig.engine ~at:0.0 t.pid (fun ctx ->
        ignore (Soda.Reader.invoke t.automaton ctx ?on_done ()))
end

(* ------------------------------------------------------------------ *)
(* Writer *)

let writer_tests =
  [ Alcotest.test_case
      "write-get goes to all servers; put starts after a majority; tag is \
       max+1"
      `Quick (fun () ->
        let rig = make_rig () in
        let writer = Writer_rig.install rig in
        Writer_rig.invoke rig writer (Bytes.make 20 'v');
        Engine.run rig.engine;
        let gets =
          received rig (fun (_, m) ->
              match m with Soda.Messages.Write_get _ -> true | _ -> false)
        in
        Alcotest.(check int) "n write-gets" 5 (List.length gets);
        (* replies from only 2 servers: below majority (3), no dispersal *)
        reply rig ~from_server:0 ~dst:(Writer_rig.pid writer)
          (Soda.Messages.Write_get_reply { op = 0; tag = Tag.make ~z:4 ~w:7 });
        reply rig ~from_server:1 ~dst:(Writer_rig.pid writer)
          (Soda.Messages.Write_get_reply { op = 0; tag = Tag.make ~z:2 ~w:9 });
        Engine.run rig.engine;
        Alcotest.(check int) "no dispersal yet" 0
          (List.length
             (received rig (fun (_, m) ->
                  match m with Soda.Messages.Md_full _ -> true | _ -> false)));
        (* third reply completes the majority *)
        reply rig ~from_server:2 ~dst:(Writer_rig.pid writer)
          (Soda.Messages.Write_get_reply { op = 0; tag = Tag.make ~z:1 ~w:1 });
        Engine.run rig.engine;
        let fulls =
          received rig (fun (_, m) ->
              match m with Soda.Messages.Md_full _ -> true | _ -> false)
        in
        (* MD-VALUE targets the first f+1 = 3 servers *)
        Alcotest.(check int) "dispersal to D" 3 (List.length fulls);
        List.iter
          (fun (_, m) ->
            match m with
            | Soda.Messages.Md_full { tag; _ } ->
              Alcotest.(check bool) "tag = (5, writer)" true
                (Tag.equal tag (Tag.make ~z:5 ~w:(Writer_rig.pid writer)))
            | _ -> ())
          fulls);
    Alcotest.test_case "completion requires k acknowledgements, deduplicated"
      `Quick (fun () ->
        let rig = make_rig () in
        (* k = n - f = 3 *)
        let writer = Writer_rig.install rig in
        let completed = ref false in
        Writer_rig.invoke rig writer ~on_done:(fun () -> completed := true)
          (Bytes.make 20 'v');
        Engine.run rig.engine;
        for s = 0 to 2 do
          reply rig ~from_server:s ~dst:(Writer_rig.pid writer)
            (Soda.Messages.Write_get_reply { op = 0; tag = Tag.initial })
        done;
        Engine.run rig.engine;
        let tw = Tag.make ~z:1 ~w:(Writer_rig.pid writer) in
        (* two acks, then the same server acking repeatedly: no completion *)
        reply rig ~from_server:0 ~dst:(Writer_rig.pid writer)
          (Soda.Messages.Write_ack { op = 0; tag = tw });
        reply rig ~from_server:1 ~dst:(Writer_rig.pid writer)
          (Soda.Messages.Write_ack { op = 0; tag = tw });
        reply rig ~from_server:1 ~dst:(Writer_rig.pid writer)
          (Soda.Messages.Write_ack { op = 0; tag = tw });
        Engine.run rig.engine;
        Alcotest.(check bool) "not yet" false !completed;
        (* a third distinct server completes the write *)
        reply rig ~from_server:4 ~dst:(Writer_rig.pid writer)
          (Soda.Messages.Write_ack { op = 0; tag = tw });
        Engine.run rig.engine;
        Alcotest.(check bool) "completed" true !completed;
        Alcotest.(check bool) "history response recorded" true
          (History.all_complete rig.config.Soda.Config.history))
  ]

(* ------------------------------------------------------------------ *)
(* Reader *)

let reader_tests =
  [ Alcotest.test_case
      "read-get polls everyone; registration carries the majority max tag"
      `Quick (fun () ->
        let rig = make_rig () in
        let reader = Reader_rig.install rig in
        Reader_rig.invoke rig reader ();
        Engine.run rig.engine;
        Alcotest.(check int) "n read-gets" 5
          (List.length
             (received rig (fun (_, m) ->
                  match m with Soda.Messages.Read_get _ -> true | _ -> false)));
        List.iteri
          (fun i z ->
            reply rig ~from_server:i ~dst:(Reader_rig.pid reader)
              (Soda.Messages.Read_get_reply { rid = 0; tag = Tag.make ~z ~w:2 }))
          [ 3; 7; 5 ];
        Engine.run rig.engine;
        let read_values =
          received rig (fun (_, m) ->
              match m with
              | Soda.Messages.Md_meta
                  { meta = Soda.Messages.Read_value { tr; _ }; _ } ->
                Tag.equal tr (Tag.make ~z:7 ~w:2)
              | _ -> false)
        in
        (* MD-META targets the first f+1 = 3 servers, with the max tag *)
        Alcotest.(check int) "registration dispersal" 3
          (List.length read_values));
    Alcotest.test_case
      "decoding needs k distinct coded elements of one tag; duplicates and \
       other tags do not count"
      `Quick (fun () ->
        let rig = make_rig () in
        (* k = 3 *)
        let reader = Reader_rig.install rig in
        let result = ref None in
        Reader_rig.invoke rig reader ~on_done:(fun v -> result := Some v) ();
        Engine.run rig.engine;
        for s = 0 to 2 do
          reply rig ~from_server:s ~dst:(Reader_rig.pid reader)
            (Soda.Messages.Read_get_reply { rid = 0; tag = Tag.initial })
        done;
        Engine.run rig.engine;
        let value = Bytes.of_string "the decoded register payload" in
        let t1 = Tag.make ~z:1 ~w:9 and t2 = Tag.make ~z:2 ~w:9 in
        let frags1 = Mds.encode rig.config.Soda.Config.code value in
        let send_frag ~tag ~index ~from_server =
          reply rig ~from_server ~dst:(Reader_rig.pid reader)
            (Soda.Messages.Relay { rid = 0; tag; fragment = frags1.(index) })
        in
        (* 2 elements of t1, 2 of t2, plus a duplicate index of t1 *)
        send_frag ~tag:t1 ~index:0 ~from_server:0;
        send_frag ~tag:t1 ~index:1 ~from_server:1;
        send_frag ~tag:t1 ~index:1 ~from_server:1;
        send_frag ~tag:t2 ~index:2 ~from_server:2;
        send_frag ~tag:t2 ~index:3 ~from_server:3;
        Engine.run rig.engine;
        Alcotest.(check bool) "not decodable yet" true (!result = None);
        (* a third distinct element of t1 completes the read *)
        send_frag ~tag:t1 ~index:4 ~from_server:4;
        Engine.run rig.engine;
        (match !result with
        | Some v -> Alcotest.(check bool) "value" true (Bytes.equal v value)
        | None -> Alcotest.fail "read did not complete");
        (* and READ-COMPLETE was dispersed *)
        Alcotest.(check bool) "read-complete sent" true
          (received rig (fun (_, m) ->
               match m with
               | Soda.Messages.Md_meta
                   { meta = Soda.Messages.Read_complete _; _ } ->
                 true
               | _ -> false)
          <> []);
        (* the returned tag is recorded in the history *)
        let record = History.find rig.config.Soda.Config.history ~op:0 in
        Alcotest.(check bool) "history tag" true
          (record.History.tag = Some t1))
  ]

let () =
  Alcotest.run "clients"
    [ ("writer", writer_tests); ("reader", reader_tests) ]

(* Tests of the multi-object composition layer (Store): independent
   registers on a shared fleet, machine-wide crash/repair, per-object
   atomicity, and cross-object concurrency from a single client. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let store_tests =
  [ Alcotest.test_case "objects are independent registers" `Quick (fun () ->
        let params = Params.make ~n:6 ~f:2 () in
        let engine = Engine.create ~seed:1 ~delay:(Delay.constant 1.0) () in
        let store =
          Soda.Store.create ~engine ~params
            ~objects:[ "alpha"; "beta"; "gamma" ] ~num_writers:1
            ~num_readers:1 ()
        in
        let results = Hashtbl.create 4 in
        List.iter
          (fun obj ->
            Soda.Store.write store ~obj ~writer:0 ~at:0.0
              (Bytes.of_string ("value of " ^ obj));
            Soda.Store.read store ~obj ~reader:0 ~at:50.0
              ~on_done:(fun v -> Hashtbl.replace results obj v)
              ())
          [ "alpha"; "beta"; "gamma" ];
        Engine.run engine;
        List.iter
          (fun obj ->
            match Hashtbl.find_opt results obj with
            | Some v ->
              Alcotest.(check string) obj ("value of " ^ obj) (Bytes.to_string v)
            | None -> Alcotest.fail (obj ^ ": read did not complete"))
          [ "alpha"; "beta"; "gamma" ];
        Alcotest.(check bool) "atomic" true
          (Soda.Store.check_atomicity store = Ok ()));
    Alcotest.test_case "one client can work on two objects concurrently"
      `Quick (fun () ->
        (* well-formedness is per object: writer 0 writes alpha and beta
           at the same instant without violating it *)
        let params = Params.make ~n:5 ~f:1 () in
        let engine = Engine.create ~seed:2 ~delay:(Delay.constant 1.0) () in
        let store =
          Soda.Store.create ~engine ~params ~objects:[ "alpha"; "beta" ]
            ~num_writers:1 ~num_readers:1 ()
        in
        Soda.Store.write store ~obj:"alpha" ~writer:0 ~at:0.0
          (Bytes.of_string "a");
        Soda.Store.write store ~obj:"beta" ~writer:0 ~at:0.0
          (Bytes.of_string "b");
        Engine.run engine;
        Alcotest.(check bool) "both complete" true
          (Soda.Store.all_complete store));
    Alcotest.test_case "machine crash and repair span all objects" `Quick
      (fun () ->
        let params = Params.make ~n:5 ~f:1 () in
        let engine = Engine.create ~seed:3 ~delay:(Delay.constant 1.0) () in
        let store =
          Soda.Store.create ~engine ~params ~objects:[ "x"; "y" ]
            ~num_writers:1 ~num_readers:1 ()
        in
        List.iter
          (fun obj ->
            Soda.Store.write store ~obj ~writer:0 ~at:0.0
              (Bytes.of_string (obj ^ "-v1")))
          [ "x"; "y" ];
        Soda.Store.crash_server store ~coordinate:2 ~at:20.0;
        Soda.Store.repair_server store ~coordinate:2 ~at:60.0;
        (* after repair, a different machine dies; reads on both objects
           must still work *)
        Soda.Store.crash_server store ~coordinate:0 ~at:100.0;
        let results = ref 0 in
        List.iter
          (fun obj ->
            Soda.Store.read store ~obj ~reader:0 ~at:150.0
              ~on_done:(fun v ->
                if Bytes.equal v (Bytes.of_string (obj ^ "-v1")) then
                  incr results)
              ())
          [ "x"; "y" ];
        Engine.run engine;
        Alcotest.(check int) "both reads correct" 2 !results;
        Alcotest.(check bool) "atomic" true
          (Soda.Store.check_atomicity store = Ok ()));
    Alcotest.test_case "total storage sums the registers" `Quick (fun () ->
        let params = Params.make ~n:6 ~f:2 () in
        let engine = Engine.create ~seed:4 ~delay:(Delay.constant 1.0) () in
        let value_len = 512 in
        let store =
          Soda.Store.create ~engine ~params ~objects:[ "a"; "b"; "c"; "d" ]
            ~value_len ~num_writers:1 ~num_readers:1 ()
        in
        List.iter
          (fun obj ->
            Soda.Store.write store ~obj ~writer:0 ~at:0.0
              (Bytes.make value_len 'z'))
          (Soda.Store.objects store);
        Engine.run engine;
        let per_register =
          float_of_int
            (6 * Erasure.Splitter.fragment_size ~k:4 ~value_len)
          /. float_of_int value_len
        in
        Alcotest.(check (float 1e-9)) "4 registers"
          (4.0 *. per_register)
          (Soda.Store.total_storage store));
    Alcotest.test_case "unknown object rejected; duplicates rejected" `Quick
      (fun () ->
        let params = Params.make ~n:5 ~f:1 () in
        let engine = Engine.create ~seed:5 ~delay:(Delay.constant 1.0) () in
        let store =
          Soda.Store.create ~engine ~params ~objects:[ "only" ] ~num_writers:1
            ~num_readers:1 ()
        in
        Alcotest.(check bool) "unknown" true
          (match Soda.Store.write store ~obj:"nope" ~writer:0 ~at:0.0 Bytes.empty
           with
          | exception Invalid_argument _ -> true
          | _ -> false);
        let engine2 = Engine.create ~seed:6 ~delay:(Delay.constant 1.0) () in
        Alcotest.(check bool) "duplicates" true
          (match
             Soda.Store.create ~engine:engine2 ~params
               ~objects:[ "a"; "a" ] ~num_writers:1 ~num_readers:1 ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    qtest "random multi-object workloads stay atomic per object"
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let params = Params.make ~n:7 ~f:2 () in
        let engine =
          Engine.create ~seed ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
        in
        let objects = [ "k1"; "k2"; "k3" ] in
        let store =
          Soda.Store.create ~engine ~params ~objects ~num_writers:2
            ~num_readers:2 ()
        in
        let rng = Simnet.Rng.create seed in
        (* clients hop between objects; per-object ops spaced far enough
           apart for single-lane clients *)
        for i = 0 to 11 do
          let obj = List.nth objects (i mod 3) in
          let t = float_of_int i *. 60.0 in
          Soda.Store.write store ~obj
            ~writer:(Simnet.Rng.int rng 2)
            ~at:t
            (Harness.Workload.value ~len:64 ~seed ~index:i);
          Soda.Store.read store ~obj
            ~reader:(Simnet.Rng.int rng 2)
            ~at:(t +. 30.0)
            ()
        done;
        Engine.run engine;
        Soda.Store.all_complete store
        && Soda.Store.check_atomicity store = Ok ())
  ]

let () = Alcotest.run "store" [ ("store", store_tests) ]
